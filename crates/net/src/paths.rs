//! The random-path model (paper §3.1 and §6.1, Tables 2–3).
//!
//! When a node plays its own game it must reach a random destination
//! through randomly drawn intermediate nodes:
//!
//! 1. a *path length* (hop count, 2–10) is drawn from the mode-specific
//!    distribution of Table 2 (*shorter* or *longer* path mode);
//! 2. the *number of alternative paths* of that length (1–3) is drawn
//!    from the hop-bucket distribution of Table 3;
//! 3. each candidate path is filled with distinct random intermediates;
//! 4. the path with the best *rating* — the product of the known
//!    forwarding rates of its nodes, 0.5 for unknown nodes — is selected
//!    (§3.1).
//!
//! A path of `h` hops crosses `h − 1` intermediate nodes (2 hops =
//! source → relay → destination).
//!
//! Table 2's numbers are *per hop count* probabilities (the only reading
//! under which both columns sum to 1; see DESIGN.md §1).

use crate::{NodeId, ReputationMatrix};
use ahn_stats::CdfTable;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

pub use crate::reputation::UNKNOWN_RATE;

/// The two path modes of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathMode {
    /// Higher probability of short paths (Tab. 2, left column).
    Shorter,
    /// Higher probability of long paths (Tab. 2, right column).
    Longer,
}

impl std::fmt::Display for PathMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PathMode::Shorter => "SP",
            PathMode::Longer => "LP",
        })
    }
}

/// Distribution over hop counts (path lengths).
///
/// Sampling goes through a [`CdfTable`] precomputed at construction
/// time: one uniform draw, one ordered comparison per category, and —
/// by the table's exact-threshold construction — the same category the
/// historical linear CDF walk would have returned for every
/// representable draw. Only `probs`/`min_hops` are serialized and
/// compared; the table is derived state.
#[derive(Debug, Clone)]
pub struct PathLengthDist {
    /// `probs[i]` is the probability of `min_hops + i` hops.
    probs: Vec<f64>,
    /// Smallest hop count with non-zero support range start.
    min_hops: usize,
    /// Precomputed sampler (fallback: last non-zero category, the
    /// documented floating-point-slack convention).
    table: CdfTable,
}

impl PathLengthDist {
    /// Builds a distribution from per-hop-count probabilities starting at
    /// `min_hops`.
    ///
    /// # Panics
    /// Panics unless the probabilities are non-negative, sum to ~1, and
    /// number at most [`ahn_stats::sampling::MAX_CATEGORIES`] (the
    /// precomputed sampler's inline capacity; the paper's Table 2 uses 9).
    pub fn new(min_hops: usize, probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "empty distribution");
        assert!(
            probs.len() <= ahn_stats::sampling::MAX_CATEGORIES,
            "hop-count distribution has {} categories, the precomputed sampler supports {}",
            probs.len(),
            ahn_stats::sampling::MAX_CATEGORIES
        );
        assert!(probs.iter().all(|&p| p >= 0.0), "negative probability");
        let sum: f64 = probs.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "hop-count probabilities sum to {sum}, not 1"
        );
        let fallback = ahn_stats::last_positive_category(probs.iter().copied());
        let table = CdfTable::new(&probs, fallback);
        PathLengthDist {
            probs,
            min_hops,
            table,
        }
    }

    /// Table 2, *shorter paths* column: 2 hops 0.2; 3–4 hops 0.3 each;
    /// 5–8 hops 0.05 each; 9–10 hops 0.
    pub fn paper_shorter() -> Self {
        PathLengthDist::new(2, vec![0.2, 0.3, 0.3, 0.05, 0.05, 0.05, 0.05, 0.0, 0.0])
    }

    /// Table 2, *longer paths* column: 2 hops 0.1; 3–4 hops 0.1 each;
    /// 5–8 hops 0.1 each; 9–10 hops 0.15 each.
    pub fn paper_longer() -> Self {
        PathLengthDist::new(2, vec![0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.15, 0.15])
    }

    /// The distribution for a [`PathMode`].
    pub fn for_mode(mode: PathMode) -> Self {
        match mode {
            PathMode::Shorter => Self::paper_shorter(),
            PathMode::Longer => Self::paper_longer(),
        }
    }

    /// Smallest representable hop count.
    pub fn min_hops(&self) -> usize {
        self.min_hops
    }

    /// Largest representable hop count.
    pub fn max_hops(&self) -> usize {
        self.min_hops + self.probs.len() - 1
    }

    /// Probability of exactly `hops` hops.
    pub fn prob(&self, hops: usize) -> f64 {
        if hops < self.min_hops {
            return 0.0;
        }
        self.probs.get(hops - self.min_hops).copied().unwrap_or(0.0)
    }

    /// Draws a hop count (one `f64` draw, precomputed-table lookup).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.min_hops + self.table.locate(rng.gen::<f64>())
    }
}

impl PartialEq for PathLengthDist {
    fn eq(&self, other: &Self) -> bool {
        self.probs == other.probs && self.min_hops == other.min_hops
    }
}

/// Serialized shape of [`PathLengthDist`] (the sampler table is derived).
#[derive(Serialize, Deserialize)]
struct PathLengthDistRepr {
    probs: Vec<f64>,
    min_hops: usize,
}

impl Serialize for PathLengthDist {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        PathLengthDistRepr {
            probs: self.probs.clone(),
            min_hops: self.min_hops,
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for PathLengthDist {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = PathLengthDistRepr::deserialize(deserializer)?;
        if repr.probs.is_empty() || repr.probs.iter().any(|&p| p < 0.0) {
            return Err(serde::de::Error::custom("invalid hop-count probabilities"));
        }
        if repr.probs.len() > ahn_stats::sampling::MAX_CATEGORIES {
            return Err(serde::de::Error::custom(format!(
                "hop-count distribution has {} categories, the sampler supports {}",
                repr.probs.len(),
                ahn_stats::sampling::MAX_CATEGORIES
            )));
        }
        let sum: f64 = repr.probs.iter().sum();
        if (sum - 1.0).abs() >= 1e-9 {
            return Err(serde::de::Error::custom(format!(
                "hop-count probabilities sum to {sum}, not 1"
            )));
        }
        Ok(PathLengthDist::new(repr.min_hops, repr.probs))
    }
}

/// Distribution over the number of alternative paths per hop bucket
/// (Table 3).
///
/// Like [`PathLengthDist`], sampling uses precomputed exact-threshold
/// [`CdfTable`]s (one per bucket row) that reproduce the historical
/// linear walk draw for draw; only the rows are serialized/compared.
#[derive(Debug, Clone)]
pub struct AltPathDist {
    /// `(max_hops_inclusive, [p(1 path), p(2 paths), p(3 paths)])` rows in
    /// ascending bucket order; a hop count uses the first row whose bound
    /// covers it, and counts beyond the last bound reuse the last row
    /// (Table 3 stops at 8 hops; 9–10-hop paths reuse the 7–8 row, see
    /// DESIGN.md §1).
    rows: Vec<(usize, [f64; 3])>,
    /// One precomputed sampler per row (fallback: the last category —
    /// the historical slack convention for this table).
    tables: Vec<CdfTable>,
}

impl AltPathDist {
    /// Builds a distribution from bucket rows.
    ///
    /// # Panics
    /// Panics unless every row's probabilities sum to ~1 and bucket bounds
    /// strictly increase.
    pub fn new(rows: Vec<(usize, [f64; 3])>) -> Self {
        assert!(!rows.is_empty(), "empty distribution");
        for (i, (bound, probs)) in rows.iter().enumerate() {
            let sum: f64 = probs.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "row {i} probabilities sum to {sum}, not 1"
            );
            if i > 0 {
                assert!(*bound > rows[i - 1].0, "bucket bounds must increase");
            }
        }
        let tables = rows
            .iter()
            .map(|(_, probs)| CdfTable::new(probs, probs.len() - 1))
            .collect();
        AltPathDist { rows, tables }
    }

    /// Table 3: 2–3 hops → (0.5, 0.3, 0.2); 4–6 → (0.6, 0.25, 0.15);
    /// 7–8 (and beyond) → (0.8, 0.15, 0.05).
    pub fn paper() -> Self {
        AltPathDist::new(vec![
            (3, [0.5, 0.3, 0.2]),
            (6, [0.6, 0.25, 0.15]),
            (8, [0.8, 0.15, 0.05]),
        ])
    }

    /// Index of the bucket row covering `hops`.
    #[inline]
    fn row_index(&self, hops: usize) -> usize {
        for (i, (bound, _)) in self.rows.iter().enumerate() {
            if hops <= *bound {
                return i;
            }
        }
        self.rows.len() - 1
    }

    /// The probability row for `hops`.
    pub fn row(&self, hops: usize) -> &[f64; 3] {
        &self.rows[self.row_index(hops)].1
    }

    /// Draws the number of available paths (1..=3) for a path of `hops`
    /// hops (one `f64` draw, precomputed-table lookup).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, hops: usize) -> usize {
        self.tables[self.row_index(hops)].locate(rng.gen::<f64>()) + 1
    }
}

impl PartialEq for AltPathDist {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
    }
}

/// Serialized shape of [`AltPathDist`] (the sampler tables are derived).
#[derive(Serialize, Deserialize)]
struct AltPathDistRepr {
    rows: Vec<(usize, [f64; 3])>,
}

impl Serialize for AltPathDist {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        AltPathDistRepr {
            rows: self.rows.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for AltPathDist {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = AltPathDistRepr::deserialize(deserializer)?;
        if repr.rows.is_empty() {
            return Err(serde::de::Error::custom("empty alternative-path table"));
        }
        for (i, (bound, probs)) in repr.rows.iter().enumerate() {
            let sum: f64 = probs.iter().sum();
            if (sum - 1.0).abs() >= 1e-9 || probs.iter().any(|&p| p < 0.0) {
                return Err(serde::de::Error::custom(format!(
                    "row {i} probabilities sum to {sum}, not 1"
                )));
            }
            if i > 0 && *bound <= repr.rows[i - 1].0 {
                return Err(serde::de::Error::custom("bucket bounds must increase"));
            }
        }
        Ok(AltPathDist::new(repr.rows))
    }
}

impl Default for AltPathDist {
    fn default() -> Self {
        AltPathDist::paper()
    }
}

/// A source route: the intermediates between a source and a destination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Originator of the packet.
    pub source: NodeId,
    /// Relay nodes in forwarding order (possibly empty only in degenerate
    /// test setups; the paper's minimum is one relay = 2 hops).
    pub intermediates: Vec<NodeId>,
    /// Final recipient (not a game participant).
    pub destination: NodeId,
}

impl Route {
    /// Number of hops (`intermediates + 1`).
    pub fn hops(&self) -> usize {
        self.intermediates.len() + 1
    }

    /// `true` when the route passes through `node` as a relay.
    pub fn relays_through(&self, node: NodeId) -> bool {
        self.intermediates.contains(&node)
    }
}

/// Rates a candidate intermediate list from `rater`'s point of view:
/// the product of known forwarding rates, [`UNKNOWN_RATE`] for unknown
/// nodes (§3.1).
///
/// Multiply-only: the matrix serves cached rates with the unknown
/// default already substituted, so the loop carries no division and no
/// `Option` branch per node.
#[inline]
pub fn path_rating(matrix: &ReputationMatrix, rater: NodeId, intermediates: &[NodeId]) -> f64 {
    intermediates
        .iter()
        .map(|&n| matrix.rate_or_unknown(rater, n))
        .product()
}

/// How a source chooses among candidate paths.
///
/// The paper always selects the best-rated path (§3.1); `Random` disables
/// reputation-based avoidance and exists for the watchdog/pathrater
/// baseline (DESIGN.md X1), where the interesting claim is precisely the
/// throughput gained by avoidance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RouteSelection {
    /// Pick the candidate with the highest reputation rating (paper).
    #[default]
    BestRated,
    /// Pick a uniformly random candidate (avoidance disabled).
    Random,
}

impl RouteSelection {
    /// Selects a candidate index according to the policy.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn select<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        matrix: &ReputationMatrix,
        rater: NodeId,
        candidates: &[Vec<NodeId>],
    ) -> usize {
        assert!(!candidates.is_empty(), "no candidate paths");
        match self {
            RouteSelection::BestRated => select_best_path(matrix, rater, candidates),
            RouteSelection::Random => rng.gen_range(0..candidates.len()),
        }
    }

    /// Selects among the candidates held in a [`PathScratch`] — the
    /// allocation-free hot path twin of [`RouteSelection::select`], with
    /// identical tie-breaking and RNG consumption.
    ///
    /// # Panics
    /// Panics if the scratch holds no candidates.
    #[inline]
    pub fn select_from<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        matrix: &ReputationMatrix,
        rater: NodeId,
        scratch: &PathScratch,
    ) -> usize {
        let n = scratch.n_candidates();
        assert!(n > 0, "no candidate paths");
        match self {
            RouteSelection::BestRated => {
                let mut best = 0;
                let mut best_rating = f64::NEG_INFINITY;
                for i in 0..n {
                    let r = path_rating(matrix, rater, scratch.candidate(i));
                    if r > best_rating {
                        best_rating = r;
                        best = i;
                    }
                }
                best
            }
            RouteSelection::Random => rng.gen_range(0..n),
        }
    }
}

/// Selects the index of the best-rated candidate path (ties go to the
/// earliest candidate, keeping runs reproducible).
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn select_best_path(
    matrix: &ReputationMatrix,
    rater: NodeId,
    candidates: &[Vec<NodeId>],
) -> usize {
    assert!(!candidates.is_empty(), "no candidate paths");
    let mut best = 0;
    let mut best_rating = f64::NEG_INFINITY;
    for (i, c) in candidates.iter().enumerate() {
        let r = path_rating(matrix, rater, c);
        if r > best_rating {
            best_rating = r;
            best = i;
        }
    }
    best
}

/// Reusable buffers for candidate-route generation: the shuffle pool and
/// up to three candidate intermediate lists.
///
/// One `PathScratch` lives for a whole tournament (inside the game
/// crate's per-tournament scratch); after warm-up, drawing a fresh set
/// of candidates allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct PathScratch {
    /// One buffer per candidate, each holding a full working copy of the
    /// relay pool; the partial Fisher–Yates shuffles in place and the
    /// candidate's intermediates are the buffer's last [`Self::relays`]
    /// entries (one memcpy per candidate, no separate shuffle buffer).
    bufs: Vec<Vec<NodeId>>,
    /// Relays per candidate in the current game (drawn once per game).
    relays: usize,
    /// Number of valid entries in `bufs` for the current game.
    live: usize,
}

impl PathScratch {
    /// Number of candidate paths drawn by the most recent generation.
    #[inline]
    pub fn n_candidates(&self) -> usize {
        self.live
    }

    /// The `i`-th candidate's intermediate list.
    ///
    /// # Panics
    /// Panics if `i >= n_candidates()`.
    #[inline]
    pub fn candidate(&self, i: usize) -> &[NodeId] {
        assert!(i < self.live, "candidate index {i} out of range");
        let buf = &self.bufs[i];
        &buf[buf.len() - self.relays..]
    }

    /// Iterates over the current candidates' intermediate lists.
    pub fn candidates(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.live).map(|i| self.candidate(i))
    }
}

/// Generates candidate paths per the paper's model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathGenerator {
    /// Hop-count distribution (Table 2 column).
    pub lengths: PathLengthDist,
    /// Alternative-path-count distribution (Table 3).
    pub alternates: AltPathDist,
}

impl PathGenerator {
    /// Generator for one of the paper's path modes.
    pub fn for_mode(mode: PathMode) -> Self {
        PathGenerator {
            lengths: PathLengthDist::for_mode(mode),
            alternates: AltPathDist::paper(),
        }
    }

    /// Draws the candidate intermediate lists for one game into
    /// `scratch`, reusing its buffers — zero allocations at steady state.
    ///
    /// `pool` is the set of nodes that may relay (tournament participants
    /// except the source and the destination). Each candidate path
    /// consists of distinct intermediates; different candidates are drawn
    /// independently and may overlap. If the pool cannot support the drawn
    /// hop count, the length is clamped to `pool.len() + 1` hops so a game
    /// can always be played.
    ///
    /// The RNG draw sequence (hop count, candidate count, one partial
    /// Fisher–Yates per candidate) is identical to the historical
    /// allocating [`PathGenerator::generate`].
    ///
    /// # Panics
    /// Panics if `pool` is empty.
    pub fn generate_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pool: &[NodeId],
        scratch: &mut PathScratch,
    ) {
        assert!(!pool.is_empty(), "cannot route without relay candidates");
        let hops = self.lengths.sample(rng);
        let relays = (hops - 1).min(pool.len());
        let n_paths = self.alternates.sample(rng, relays + 1);
        if scratch.bufs.len() < n_paths {
            scratch.bufs.resize_with(n_paths, Vec::new);
        }
        scratch.relays = relays;
        scratch.live = n_paths;
        for buf in scratch.bufs.iter_mut().take(n_paths) {
            buf.clear();
            buf.extend_from_slice(pool);
            // Partial Fisher–Yates: `relays` distinct uniform picks land
            // at the end of the buffer, which is exactly the slice
            // `candidate()` exposes.
            buf.partial_shuffle(rng, relays);
        }
    }

    /// Draws the candidate intermediate lists for one game, allocating
    /// the result — the convenience twin of
    /// [`PathGenerator::generate_into`] for tests and tooling, with the
    /// same RNG stream.
    ///
    /// # Panics
    /// Panics if `pool` is empty.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pool: &[NodeId],
        scratch: &mut Vec<NodeId>,
    ) -> Vec<Vec<NodeId>> {
        assert!(!pool.is_empty(), "cannot route without relay candidates");
        let hops = self.lengths.sample(rng);
        let relays = (hops - 1).min(pool.len());
        let n_paths = self.alternates.sample(rng, relays + 1);
        (0..n_paths)
            .map(|_| {
                scratch.clear();
                scratch.extend_from_slice(pool);
                // Partial Fisher–Yates: the first `relays` slots become a
                // uniform distinct sample.
                let (sampled, _) = scratch.partial_shuffle(rng, relays);
                sampled.to_vec()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn paper_length_distributions_are_normalized() {
        // Constructors assert the sums; also spot-check Table 2 entries.
        let sp = PathLengthDist::paper_shorter();
        assert_eq!(sp.prob(2), 0.2);
        assert_eq!(sp.prob(3), 0.3);
        assert_eq!(sp.prob(5), 0.05);
        assert_eq!(sp.prob(9), 0.0);
        assert_eq!(sp.prob(11), 0.0);
        let lp = PathLengthDist::paper_longer();
        assert_eq!(lp.prob(2), 0.1);
        assert_eq!(lp.prob(10), 0.15);
        assert_eq!(sp.min_hops(), 2);
        assert_eq!(sp.max_hops(), 10);
    }

    #[test]
    fn length_sampling_matches_table2() {
        // Chi-squared goodness of fit at 99.9% over the supported hops.
        let dist = PathLengthDist::paper_shorter();
        let mut rng = rng(17);
        let mut counts = [0u64; 9];
        const N: usize = 100_000;
        for _ in 0..N {
            counts[dist.sample(&mut rng) - 2] += 1;
        }
        assert_eq!(counts[7], 0, "9 hops has probability 0 in SP mode");
        assert_eq!(counts[8], 0, "10 hops has probability 0 in SP mode");
        let expected = [0.2, 0.3, 0.3, 0.05, 0.05, 0.05, 0.05];
        let stat = ahn_stats_chi(&counts[..7], &expected);
        assert!(stat < 22.458, "chi2 = {stat}"); // 99.9% crit for dof 6
    }

    /// Minimal local chi-squared (avoids a dev-dependency cycle with
    /// ahn-stats).
    fn ahn_stats_chi(obs: &[u64], expected: &[f64]) -> f64 {
        let n: u64 = obs.iter().sum();
        obs.iter()
            .zip(expected)
            .map(|(&o, &p)| {
                let e = n as f64 * p;
                let d = o as f64 - e;
                d * d / e
            })
            .sum()
    }

    #[test]
    fn alt_path_rows_match_table3() {
        let d = AltPathDist::paper();
        assert_eq!(d.row(2), &[0.5, 0.3, 0.2]);
        assert_eq!(d.row(3), &[0.5, 0.3, 0.2]);
        assert_eq!(d.row(4), &[0.6, 0.25, 0.15]);
        assert_eq!(d.row(6), &[0.6, 0.25, 0.15]);
        assert_eq!(d.row(7), &[0.8, 0.15, 0.05]);
        assert_eq!(d.row(8), &[0.8, 0.15, 0.05]);
        // 9-10 hops reuse the last row (DESIGN.md §1).
        assert_eq!(d.row(10), &[0.8, 0.15, 0.05]);
    }

    #[test]
    fn alt_path_sampling_matches_table3() {
        let d = AltPathDist::paper();
        let mut rng = rng(23);
        let mut counts = [0u64; 3];
        const N: usize = 100_000;
        for _ in 0..N {
            counts[d.sample(&mut rng, 5) - 1] += 1;
        }
        let stat = ahn_stats_chi(&counts, &[0.6, 0.25, 0.15]);
        assert!(stat < 13.816, "chi2 = {stat}"); // 99.9% crit for dof 2
    }

    #[test]
    fn path_rating_uses_unknown_default() {
        let m = ReputationMatrix::new(4);
        // All unknown: rating = 0.5^k.
        let r = path_rating(&m, NodeId(0), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert!((r - 0.125).abs() < 1e-12);
        assert_eq!(path_rating(&m, NodeId(0), &[]), 1.0);
    }

    #[test]
    fn path_rating_multiplies_known_rates() {
        let mut m = ReputationMatrix::new(3);
        // Node 1 rate 1.0 (2/2), node 2 rate 0.5 (1/2).
        m.record_forward(NodeId(0), NodeId(1));
        m.record_forward(NodeId(0), NodeId(1));
        m.record_forward(NodeId(0), NodeId(2));
        m.record_drop(NodeId(0), NodeId(2));
        let r = path_rating(&m, NodeId(0), &[NodeId(1), NodeId(2)]);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn best_path_avoids_known_droppers() {
        let mut m = ReputationMatrix::new(4);
        // Node 3 is a known dropper.
        m.record_drop(NodeId(0), NodeId(3));
        let good = vec![NodeId(1), NodeId(2)];
        let bad = vec![NodeId(1), NodeId(3)];
        assert_eq!(
            select_best_path(&m, NodeId(0), &[bad.clone(), good.clone()]),
            1
        );
        assert_eq!(select_best_path(&m, NodeId(0), &[good, bad]), 0);
    }

    #[test]
    fn best_path_tie_breaks_to_first() {
        let m = ReputationMatrix::new(4);
        let a = vec![NodeId(1)];
        let b = vec![NodeId(2)];
        assert_eq!(select_best_path(&m, NodeId(0), &[a, b]), 0);
    }

    #[test]
    #[should_panic(expected = "no candidate paths")]
    fn best_path_of_nothing_panics() {
        let m = ReputationMatrix::new(1);
        let _ = select_best_path(&m, NodeId(0), &[]);
    }

    #[test]
    fn generated_paths_are_distinct_and_from_pool() {
        let gen = PathGenerator::for_mode(PathMode::Longer);
        let pool: Vec<NodeId> = (2..50u32).map(NodeId).collect();
        let mut rng = rng(5);
        let mut scratch = Vec::new();
        for _ in 0..500 {
            let candidates = gen.generate(&mut rng, &pool, &mut scratch);
            assert!((1..=3).contains(&candidates.len()));
            for path in &candidates {
                assert!((1..=9).contains(&path.len()), "1..=9 relays");
                let mut seen = path.clone();
                seen.sort();
                seen.dedup();
                assert_eq!(seen.len(), path.len(), "duplicate relay in path");
                assert!(path.iter().all(|n| pool.contains(n)));
            }
        }
    }

    #[test]
    fn generation_clamps_to_small_pools() {
        let gen = PathGenerator::for_mode(PathMode::Longer);
        let pool = vec![NodeId(1), NodeId(2)];
        let mut rng = rng(9);
        let mut scratch = Vec::new();
        for _ in 0..200 {
            for path in gen.generate(&mut rng, &pool, &mut scratch) {
                assert!(path.len() <= 2);
            }
        }
    }

    #[test]
    fn route_accessors() {
        let r = Route {
            source: NodeId(0),
            intermediates: vec![NodeId(1), NodeId(2)],
            destination: NodeId(3),
        };
        assert_eq!(r.hops(), 3);
        assert!(r.relays_through(NodeId(1)));
        assert!(!r.relays_through(NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn bad_length_distribution_panics() {
        let _ = PathLengthDist::new(2, vec![0.5, 0.2]);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn bad_alt_distribution_panics() {
        let _ = AltPathDist::new(vec![(3, [0.5, 0.2, 0.2])]);
    }

    #[test]
    fn mode_display() {
        assert_eq!(PathMode::Shorter.to_string(), "SP");
        assert_eq!(PathMode::Longer.to_string(), "LP");
    }
}
