//! Second-hand reputation exchange (extension; paper §2, refs \[1\], \[2\],
//! \[10\]).
//!
//! The paper's model uses only first-hand watchdog observations. Its
//! related-work section discusses systems that also *exchange*
//! reputation: CORE propagates only positive reports (so a malicious
//! node cannot broadcast slander), CONFIDANT also uses negative
//! second-hand information. This module implements both policies so the
//! harness can measure what second-hand information buys (ablation A7 in
//! DESIGN.md):
//!
//! * [`GossipPolicy::PositiveOnly`] — CORE-style: a node shares only
//!   records whose forwarding rate is at least 0.5;
//! * [`GossipPolicy::All`] — CONFIDANT-style: every record is shared,
//!   including denunciations.
//!
//! Second-hand records are *capped* before merging so hearsay can bias a
//! fresh opinion but never outweigh sustained first-hand observation.

use crate::reputation::ReputationMatrix;
use crate::NodeId;
use serde::{Deserialize, Serialize};

/// What a node is willing to share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GossipPolicy {
    /// Share only records with forwarding rate ≥ 0.5 (CORE, ref \[10\]).
    PositiveOnly,
    /// Share everything (CONFIDANT, ref \[2\]).
    All,
}

/// Gossip parameters, carried in the game configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Which records are shared.
    pub policy: GossipPolicy,
    /// Maximum observation weight (requests) a single exchange may
    /// transfer per subject — hearsay is bounded.
    pub cap: u32,
}

impl GossipConfig {
    /// CORE-style defaults: positive-only, hearsay weight capped at 3.
    pub fn core_style() -> Self {
        GossipConfig {
            policy: GossipPolicy::PositiveOnly,
            cap: 3,
        }
    }

    /// CONFIDANT-style defaults: full sharing, same cap.
    pub fn confidant_style() -> Self {
        GossipConfig {
            policy: GossipPolicy::All,
            cap: 3,
        }
    }
}

/// Transfers a bounded copy of `from`'s observations to `to`.
///
/// For every subject `from` knows (other than the two parties), a
/// capped, proportionally scaled copy of the record is merged into
/// `to`'s table, subject to the policy filter. Returns the number of
/// subjects shared.
pub fn share_observations(
    matrix: &mut ReputationMatrix,
    from: NodeId,
    to: NodeId,
    config: &GossipConfig,
) -> usize {
    if from == to {
        return 0;
    }
    let n = matrix.len();
    let mut shared = 0;
    for s in 0..n {
        let subject = NodeId::from(s);
        if subject == from || subject == to {
            continue;
        }
        let record = matrix.record(from, subject);
        if record.requests == 0 {
            continue;
        }
        if config.policy == GossipPolicy::PositiveOnly && record.rate().expect("requests > 0") < 0.5
        {
            continue;
        }
        let requests = record.requests.min(config.cap);
        // Scale forwarded proportionally (floor) so pf <= ps holds.
        let forwarded =
            (u64::from(record.forwarded) * u64::from(requests) / u64::from(record.requests)) as u32;
        matrix.absorb(to, subject, requests, forwarded);
        shared += 1;
    }
    shared
}

/// Injects a fabricated *negative* report: `from` tells `to` that each
/// node in `victims` dropped `config.cap` packets (zero forwarded) —
/// the slander half of a liar/poisoner attack. The fabrication uses the
/// same capped-merge primitive as honest gossip, so the defense
/// question the atlas asks is exactly the one CORE raised: does the
/// policy let negative hearsay travel at all, and if so, can bounded
/// hearsay outweigh first-hand observation? Returns the number of
/// victims slandered.
pub fn poison_observations(
    matrix: &mut ReputationMatrix,
    from: NodeId,
    to: NodeId,
    victims: &[NodeId],
    config: &GossipConfig,
) -> usize {
    if from == to || config.cap == 0 {
        return 0;
    }
    let mut poisoned = 0;
    for &victim in victims {
        if victim == from || victim == to {
            continue;
        }
        matrix.absorb(to, victim, config.cap, 0);
        poisoned += 1;
    }
    poisoned
}

/// Injects a fabricated *positive* report: `from` vouches to `to` that
/// each node in `allies` forwarded `config.cap` of `config.cap`
/// packets — the mutual-vouching half of a colluding clique (and the
/// self-promotion half of a liar attack). Returns the number of allies
/// vouched for.
pub fn vouch_observations(
    matrix: &mut ReputationMatrix,
    from: NodeId,
    to: NodeId,
    allies: &[NodeId],
    config: &GossipConfig,
) -> usize {
    if from == to || config.cap == 0 {
        return 0;
    }
    let mut vouched = 0;
    for &ally in allies {
        if ally == from || ally == to {
            continue;
        }
        matrix.absorb(to, ally, config.cap, config.cap);
        vouched += 1;
    }
    vouched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reputation::RepRecord;

    fn id(v: u32) -> NodeId {
        NodeId(v)
    }

    /// Builds a matrix where node 0 has observed: node 2 forwarding 10/10
    /// and node 3 dropping 0/10.
    fn seeded() -> ReputationMatrix {
        let mut m = ReputationMatrix::new(5);
        for _ in 0..10 {
            m.record_forward(id(0), id(2));
            m.record_drop(id(0), id(3));
        }
        m
    }

    #[test]
    fn positive_only_shares_good_news() {
        let mut m = seeded();
        let shared = share_observations(&mut m, id(0), id(1), &GossipConfig::core_style());
        assert_eq!(shared, 1, "only the positive record travels");
        assert_eq!(m.rate(id(1), id(2)), Some(1.0));
        assert!(!m.knows(id(1), id(3)), "denunciation must not travel");
        m.check_invariants().unwrap();
    }

    #[test]
    fn confidant_shares_denunciations_too() {
        let mut m = seeded();
        let shared = share_observations(&mut m, id(0), id(1), &GossipConfig::confidant_style());
        assert_eq!(shared, 2);
        assert_eq!(m.rate(id(1), id(2)), Some(1.0));
        assert_eq!(m.rate(id(1), id(3)), Some(0.0));
        m.check_invariants().unwrap();
    }

    #[test]
    fn hearsay_is_capped() {
        let mut m = seeded();
        share_observations(&mut m, id(0), id(1), &GossipConfig::confidant_style());
        // 10 first-hand observations were capped to 3.
        assert_eq!(m.record(id(1), id(2)).requests, 3);
        assert_eq!(m.record(id(1), id(2)).forwarded, 3);
        assert_eq!(m.record(id(1), id(3)).requests, 3);
        assert_eq!(m.record(id(1), id(3)).forwarded, 0);
    }

    #[test]
    fn proportional_scaling_preserves_rate_roughly() {
        let mut m = ReputationMatrix::new(3);
        // 7/10 forwarding rate.
        for _ in 0..7 {
            m.record_forward(id(0), id(2));
        }
        for _ in 0..3 {
            m.record_drop(id(0), id(2));
        }
        share_observations(&mut m, id(0), id(1), &GossipConfig::confidant_style());
        let rec = m.record(id(1), id(2));
        assert_eq!(rec.requests, 3);
        assert_eq!(rec.forwarded, 2); // floor(7 * 3 / 10)
        m.check_invariants().unwrap();
    }

    #[test]
    fn parties_never_gossip_about_each_other_or_themselves() {
        let mut m = ReputationMatrix::new(3);
        for _ in 0..5 {
            m.record_forward(id(0), id(1));
        }
        // Node 0 knows about node 1; sharing *to* node 1 must not create
        // a self-record.
        share_observations(&mut m, id(0), id(1), &GossipConfig::confidant_style());
        assert!(!m.knows(id(1), id(1)));
        m.check_invariants().unwrap();
        // Self-exchange is a no-op.
        assert_eq!(
            share_observations(&mut m, id(0), id(0), &GossipConfig::confidant_style()),
            0
        );
    }

    #[test]
    fn poison_plants_denunciations_but_spares_the_parties() {
        let mut m = ReputationMatrix::new(4);
        let victims = [id(0), id(1), id(2), id(3)];
        let n = poison_observations(
            &mut m,
            id(0),
            id(1),
            &victims,
            &GossipConfig::confidant_style(),
        );
        assert_eq!(n, 2, "teller and listener are never subjects");
        assert_eq!(m.rate(id(1), id(2)), Some(0.0));
        assert_eq!(m.record(id(1), id(3)).requests, 3);
        assert!(!m.knows(id(1), id(0)));
        assert!(!m.knows(id(1), id(1)));
        m.check_invariants().unwrap();
    }

    #[test]
    fn poison_is_bounded_by_first_hand_observation() {
        // A listener with sustained first-hand evidence keeps a high
        // opinion after one capped slander: 10/10 + 0/3 = 10/13.
        let mut m = seeded();
        poison_observations(
            &mut m,
            id(4),
            id(0),
            &[id(2)],
            &GossipConfig::confidant_style(),
        );
        let rate = m.rate(id(0), id(2)).unwrap();
        assert!((rate - 10.0 / 13.0).abs() < 1e-12);
        m.check_invariants().unwrap();
    }

    #[test]
    fn vouch_plants_full_forward_records() {
        let mut m = ReputationMatrix::new(4);
        let n = vouch_observations(
            &mut m,
            id(0),
            id(1),
            &[id(2), id(3)],
            &GossipConfig::core_style(),
        );
        assert_eq!(n, 2);
        assert_eq!(m.rate(id(1), id(2)), Some(1.0));
        assert_eq!(
            m.record(id(1), id(3)),
            RepRecord {
                requests: 3,
                forwarded: 3
            }
        );
        m.check_invariants().unwrap();
    }

    #[test]
    fn zero_cap_silences_fabrication() {
        let mut m = ReputationMatrix::new(3);
        let cfg = GossipConfig {
            policy: GossipPolicy::All,
            cap: 0,
        };
        assert_eq!(poison_observations(&mut m, id(0), id(1), &[id(2)], &cfg), 0);
        assert_eq!(vouch_observations(&mut m, id(0), id(1), &[id(2)], &cfg), 0);
        assert!(!m.knows(id(1), id(2)));
    }

    #[test]
    fn gossip_accumulates_across_sources() {
        // Two witnesses both vouch for node 3 to node 2.
        let mut m = ReputationMatrix::new(4);
        for w in [0u32, 1] {
            for _ in 0..5 {
                m.record_forward(id(w), id(3));
            }
        }
        share_observations(&mut m, id(0), id(2), &GossipConfig::core_style());
        share_observations(&mut m, id(1), id(2), &GossipConfig::core_style());
        assert_eq!(m.record(id(2), id(3)).requests, 6, "3 + 3 capped units");
        assert_eq!(m.rate(id(2), id(3)), Some(1.0));
    }
}
