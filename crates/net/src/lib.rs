//! Ad hoc network substrate for the IPDPS'07 reproduction.
//!
//! This crate implements every networking mechanism the paper's model
//! depends on (paper §3 and §6.1):
//!
//! * [`reputation`] — the per-node reputation tables built from watchdog
//!   observations (packets sent to / forwarded by each known node);
//! * [`trust`] — the forwarding-rate → trust-level lookup of Fig. 1b;
//! * [`activity`] — the LO/MI/HI activity classification of §3.2;
//! * [`watchdog`] — the Fig. 1a update rule mapping a route outcome to
//!   reputation updates for every game participant;
//! * [`paths`] — the random-path model of §6.1 (Tables 2–3): hop-count
//!   distributions for the *shorter*/*longer* path modes, alternate-path
//!   counts, path rating as the product of known forwarding rates, and
//!   best-reputation route selection;
//! * [`energy`] — Feeney–Nilsson-style per-state energy accounting (the
//!   paper's §1 motivation: sleeping costs ≈ 2 % of idle listening);
//! * [`topology`] — an *optional extension*: a geometric
//!   random-waypoint mobility model that can replace the random
//!   intermediate selection, letting users check the paper's high-mobility
//!   abstraction against an explicit topology.
//!
//! The paper's own network model is deliberately abstract: "All
//! intermediate nodes are chosen randomly. This simulates a network with a
//! high mobility level" (§4.1). The [`paths`] module is therefore the
//! substrate actually used by the experiments; [`topology`] exists for
//! sensitivity analysis.

#![deny(missing_docs)]

pub mod activity;
pub mod energy;
pub mod gossip;
pub mod paths;
pub mod reputation;
pub mod topology;
pub mod trust;
pub mod watchdog;

pub use activity::{ActivityBands, ActivityLevel};
pub use gossip::{GossipConfig, GossipPolicy};
pub use paths::{
    AltPathDist, PathGenerator, PathLengthDist, PathMode, PathScratch, Route, RouteSelection,
};
pub use reputation::{ReputationMatrix, UNKNOWN_RATE};
pub use trust::{TrustLevel, TrustTable};
pub use watchdog::RouteOutcome;

use serde::{Deserialize, Serialize};

/// Dense node identifier.
///
/// Within one experiment the nodes are numbered `0..n`: normal players
/// first, then the constantly-selfish pool. Dense ids let the reputation
/// store be a flat matrix instead of hash maps (the ids are tiny and the
/// store is cleared every generation).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node id exceeds u32"))
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_conversions() {
        let id = NodeId::from(7usize);
        assert_eq!(id, NodeId(7));
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(NodeId::from(3u32), NodeId(3));
    }

    #[test]
    fn node_id_serde_is_transparent() {
        let id = NodeId(12);
        assert_eq!(serde_json::to_string(&id).unwrap(), "12");
        let back: NodeId = serde_json::from_str("12").unwrap();
        assert_eq!(back, id);
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn node_id_overflow_panics() {
        let _ = NodeId::from(usize::MAX);
    }
}
