//! Payoff tables and payoff accounts (paper §4.2, Fig. 2).
//!
//! Two tables exist: the *source* table pays on transmission status
//! (S = 5 on success, F = 0 on failure) and the *intermediate* table pays
//! each decision depending on the decider's trust in the source.
//!
//! The intermediate table's numbers are OCR-garbled in the available
//! paper text; the defaults here are the reconstruction argued in
//! DESIGN.md (substitution 3):
//!
//! | decision | TL3 | TL2 | TL1 | TL0 |
//! |----------|-----|-----|-----|-----|
//! | forward  | 2.0 | 1.0 | 0.5 | 0.0 |
//! | discard  | 0.5 | 1.0 | 3.0 | 2.0 |
//!
//! satisfying every prose constraint: forwarding pays more the higher the
//! trust; discarding a *less trusted* (TL1) source pays more than
//! discarding an *untrusted* (TL0) one; discarding dominates forwarding
//! at low trust (enforcement) and loses at high trust. The literal OCR
//! reading and a no-reputation table are provided as presets for
//! ablations A1 and A4.

use ahn_net::TrustLevel;
use serde::{Deserialize, Serialize};

/// The payoff tables of Fig. 2, fully configurable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PayoffConfig {
    /// Source payoff when the packet reaches the destination (S).
    pub success: f64,
    /// Source payoff when it does not (F).
    pub failure: f64,
    /// Intermediate payoff for forwarding, indexed by trust level value
    /// (`forward[0]` = TL0 … `forward[3]` = TL3).
    pub forward: [f64; 4],
    /// Intermediate payoff for discarding, same indexing.
    pub discard: [f64; 4],
}

impl Default for PayoffConfig {
    fn default() -> Self {
        PayoffConfig::paper()
    }
}

impl PayoffConfig {
    /// The reconstructed paper table (see module docs / DESIGN.md).
    pub fn paper() -> Self {
        PayoffConfig {
            success: 5.0,
            failure: 0.0,
            forward: [0.0, 0.5, 1.0, 2.0],
            discard: [2.0, 3.0, 1.0, 0.5],
        }
    }

    /// The *literal* OCR reading of Fig. 2 (`C: 2 1 0.5 3`,
    /// `D: 0.5 1 3 2` for TL3..TL0) — ablation A1 demonstrates that its
    /// forward-for-TL0 = 3 cell undermines enforcement.
    pub fn literal_ocr() -> Self {
        PayoffConfig {
            success: 5.0,
            failure: 0.0,
            forward: [3.0, 0.5, 1.0, 2.0],
            discard: [2.0, 3.0, 1.0, 0.5],
        }
    }

    /// The loss-minimizing reconstruction found by the PR-5 search
    /// (`ahn_core::calibrate`, DESIGN.md §6): reading the garbled
    /// forward-row digit as `0.3` and permuting the remaining Fig. 2
    /// digits across the cells. Where the default [`PayoffConfig::paper`]
    /// reconstruction collapses cases 2 and 4 to all-defect, this table
    /// reproduces *all four* evaluation cases at paper scale — case 2 at
    /// 19.6 % vs the paper's 19 %, and both Table 5 columns per
    /// environment (case 3 within 1.2 pp, case 4 within 5.8 pp of every
    /// cell; 150 generations x 4 replications). It satisfies every §4.2
    /// prose constraint; the structural difference from the default is a
    /// much smaller discard premium (enforcement stays, but defection's
    /// payoff ceiling drops) and forwarding at full trust out-paying
    /// every discard.
    ///
    /// The default table is deliberately **unchanged** (golden tests pin
    /// its streams); select this one via the `"best-fit"` payoff variant
    /// or `PayoffConfig::best_fit()`.
    pub fn best_fit() -> Self {
        PayoffConfig {
            success: 5.0,
            failure: 0.0,
            forward: [0.3, 1.0, 2.0, 3.0],
            discard: [0.5, 1.0, 0.5, 2.0],
        }
    }

    /// A table for a network *without* a reputation response mechanism:
    /// discarding pays more than forwarding at every trust level (§4.2:
    /// "If such system was not used, the payoff for selfish behavior ...
    /// would always be higher than for forwarding"). Ablation A4.
    pub fn no_reputation() -> Self {
        PayoffConfig {
            success: 5.0,
            failure: 0.0,
            forward: [0.5, 0.5, 0.5, 0.5],
            discard: [2.0, 2.0, 2.0, 2.0],
        }
    }

    /// Source payoff for a transmission status.
    #[inline]
    pub fn source(&self, delivered: bool) -> f64 {
        if delivered {
            self.success
        } else {
            self.failure
        }
    }

    /// Intermediate payoff for forwarding a packet from a source seen at
    /// `trust`.
    #[inline]
    pub fn forward(&self, trust: TrustLevel) -> f64 {
        self.forward[trust.value() as usize]
    }

    /// Intermediate payoff for discarding.
    #[inline]
    pub fn discard(&self, trust: TrustLevel) -> f64 {
        self.discard[trust.value() as usize]
    }

    /// Returns this table with both intermediate rows multiplied by
    /// `factor` (source payoffs untouched) — the *scale* axis of the
    /// reconstruction search. Every §4.2 prose constraint compares
    /// intermediate cells only to each other, so scaling preserves
    /// [`PayoffConfig::check_paper_constraints`]; what it changes is the
    /// weight of per-decision payoffs relative to the fixed source
    /// payoff S = 5, i.e. the selection pressure on intermediates.
    pub fn scaled_intermediate(&self, factor: f64) -> Self {
        let scale = |row: &[f64; 4]| {
            [
                row[0] * factor,
                row[1] * factor,
                row[2] * factor,
                row[3] * factor,
            ]
        };
        PayoffConfig {
            success: self.success,
            failure: self.failure,
            forward: scale(&self.forward),
            discard: scale(&self.discard),
        }
    }

    /// Checks the prose constraints of §4.2 (used by tests; ablation
    /// presets intentionally violate some of them):
    /// forwarding payoff non-decreasing in trust, discard(TL1) >
    /// discard(TL0), enforcement at the extremes.
    pub fn check_paper_constraints(&self) -> Result<(), String> {
        for w in self.forward.windows(2) {
            if w[1] < w[0] {
                return Err(format!(
                    "forward payoffs not monotone in trust: {:?}",
                    self.forward
                ));
            }
        }
        if self.discard[1] <= self.discard[0] {
            return Err("discard(TL1) must exceed discard(TL0)".into());
        }
        if self.discard[0] <= self.forward[0] {
            return Err("discarding must dominate forwarding at TL0".into());
        }
        if self.forward[3] <= self.discard[3] {
            return Err("forwarding must dominate discarding at TL3".into());
        }
        Ok(())
    }
}

/// The plausible readings of the garbled forward-row digit of Fig. 2.
///
/// The OCR text reads the forward row as `2 1 0.5 3` (TL3..TL0), but
/// the trailing `3` cannot be right as printed: forwarding for an
/// *untrusted* source would then pay the most, undermining the very
/// enforcement §4.2 describes. Three readings survive scrutiny: the
/// glyph was a `0` (the reconstruction argued in DESIGN.md), a `0.3`
/// that lost its decimal point, or a genuine `3` that belongs in a
/// *different cell* of the table (covered by the permutation family —
/// see [`enumerate_reconstructions`]).
pub const GARBLED_READINGS: [f64; 3] = [0.0, 0.3, 3.0];

/// Enumerates every candidate reconstruction of Fig. 2's intermediate
/// payoff table: for each reading of the garbled digit
/// ([`GARBLED_READINGS`]), every distinct assignment of the resulting
/// eight-digit multiset — `{r, 0.5, 1, 2}` for the forward row's OCR
/// digits and `{0.5, 1, 3, 2}` for the discard row's — across the
/// eight cells, keeping exactly the assignments that satisfy the §4.2
/// prose constraints ([`PayoffConfig::check_paper_constraints`]).
///
/// This is the "the OCR got the digits, but maybe not their positions"
/// family: the literal reading is in it whenever it satisfies the
/// constraints, and so is the default [`PayoffConfig::paper`] table.
/// The result is deduplicated and sorted into a deterministic order
/// (forward row, then discard row, lexicographically), so downstream
/// candidate ids are stable across runs, threads and processes.
///
/// The family is a constant, so the backtracking enumeration runs once
/// per process and subsequent calls clone the memoized list (a
/// calibration run otherwise re-enumerates it several times: banner,
/// validation, candidate expansion).
pub fn enumerate_reconstructions() -> Vec<PayoffConfig> {
    static FAMILY: std::sync::OnceLock<Vec<PayoffConfig>> = std::sync::OnceLock::new();
    FAMILY
        .get_or_init(|| {
            let mut tables: Vec<PayoffConfig> = Vec::new();
            for reading in GARBLED_READINGS {
                // The eight OCR digits as a value -> multiplicity pool.
                let mut pool: Vec<(f64, usize)> = Vec::new();
                for v in [reading, 0.5, 1.0, 2.0, 0.5, 1.0, 3.0, 2.0] {
                    match pool.iter_mut().find(|(p, _)| *p == v) {
                        Some((_, count)) => *count += 1,
                        None => pool.push((v, 1)),
                    }
                }
                pool.sort_by(|a, b| a.0.total_cmp(&b.0));
                let mut cells = [0.0f64; 8];
                assign(&mut pool, &mut cells, 0, &mut tables);
            }
            tables.sort_by(key_cmp);
            tables.dedup_by(|a, b| key_cmp(a, b) == std::cmp::Ordering::Equal);
            tables
        })
        .clone()
}

/// Recursively assigns the remaining pool values to cells `i..8`
/// (cells 0–3 = forward TL0..TL3, 4–7 = discard TL0..TL3), pruning on
/// the forward-monotonicity constraint and keeping every complete
/// assignment that passes the full constraint check.
fn assign(
    pool: &mut Vec<(f64, usize)>,
    cells: &mut [f64; 8],
    i: usize,
    out: &mut Vec<PayoffConfig>,
) {
    if i == 8 {
        let candidate = PayoffConfig {
            success: 5.0,
            failure: 0.0,
            forward: [cells[0], cells[1], cells[2], cells[3]],
            discard: [cells[4], cells[5], cells[6], cells[7]],
        };
        if candidate.check_paper_constraints().is_ok() {
            out.push(candidate);
        }
        return;
    }
    for k in 0..pool.len() {
        let (value, count) = pool[k];
        if count == 0 {
            continue;
        }
        // Prune: the forward row must be non-decreasing in trust.
        if (1..4).contains(&i) && value < cells[i - 1] {
            continue;
        }
        pool[k].1 -= 1;
        cells[i] = value;
        assign(pool, cells, i + 1, out);
        pool[k].1 = count;
    }
}

/// Total order on tables by their eight intermediate cells (the
/// deterministic order of [`enumerate_reconstructions`]).
fn key_cmp(a: &PayoffConfig, b: &PayoffConfig) -> std::cmp::Ordering {
    let key = |c: &PayoffConfig| {
        let mut k = [0.0f64; 8];
        k[..4].copy_from_slice(&c.forward);
        k[4..].copy_from_slice(&c.discard);
        k
    };
    let (ka, kb) = (key(a), key(b));
    for (x, y) in ka.iter().zip(&kb) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// Per-player payoff account implementing the fitness function (eq. 1):
/// `fitness = (tps + tpf + tpd) / ne`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PayoffAccount {
    /// Total payoff received for sending own packets.
    pub tps: f64,
    /// Total payoff received for forwarding others' packets.
    pub tpf: f64,
    /// Total payoff received for discarding others' packets.
    pub tpd: f64,
    /// Number of events (own packets sent + packets forwarded +
    /// packets discarded).
    pub ne: u64,
}

impl PayoffAccount {
    /// Creates a zeroed account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one own-packet transmission.
    pub fn add_source(&mut self, payoff: f64) {
        self.tps += payoff;
        self.ne += 1;
    }

    /// Accounts one forward.
    pub fn add_forward(&mut self, payoff: f64) {
        self.tpf += payoff;
        self.ne += 1;
    }

    /// Accounts one discard.
    pub fn add_discard(&mut self, payoff: f64) {
        self.tpd += payoff;
        self.ne += 1;
    }

    /// The fitness value (eq. 1); 0 when no events occurred.
    pub fn fitness(&self) -> f64 {
        if self.ne == 0 {
            0.0
        } else {
            (self.tps + self.tpf + self.tpd) / self.ne as f64
        }
    }

    /// Resets the account (start of a generation).
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_satisfies_all_prose_constraints() {
        PayoffConfig::paper().check_paper_constraints().unwrap();
    }

    #[test]
    fn literal_ocr_table_breaks_enforcement_at_tl0() {
        let c = PayoffConfig::literal_ocr();
        let err = c.check_paper_constraints().unwrap_err();
        assert!(err.contains("monotone") || err.contains("TL0"), "{err}");
        // Specifically: forwarding for an untrusted source pays the most.
        assert!(c.forward(TrustLevel::T0) > c.discard(TrustLevel::T0));
    }

    #[test]
    fn no_reputation_table_makes_discarding_dominant_everywhere() {
        let c = PayoffConfig::no_reputation();
        for t in TrustLevel::ALL {
            assert!(c.discard(t) > c.forward(t), "{t}");
        }
    }

    #[test]
    fn source_payoffs_are_the_stated_s_and_f() {
        let c = PayoffConfig::paper();
        assert_eq!(c.source(true), 5.0);
        assert_eq!(c.source(false), 0.0);
    }

    #[test]
    fn intermediate_lookups_by_trust() {
        let c = PayoffConfig::paper();
        assert_eq!(c.forward(TrustLevel::T3), 2.0);
        assert_eq!(c.forward(TrustLevel::T1), 0.5);
        assert_eq!(c.discard(TrustLevel::T1), 3.0);
        assert_eq!(c.discard(TrustLevel::T0), 2.0);
        assert_eq!(c.discard(TrustLevel::T3), 0.5);
    }

    #[test]
    fn fig2_example_game_payoffs() {
        // Fig. 2b: B forwards with TL3 -> 2.0; C discards with TL1 -> 3.0;
        // source fails -> 0.
        let c = PayoffConfig::paper();
        let mut b = PayoffAccount::new();
        b.add_forward(c.forward(TrustLevel::T3));
        let mut cc = PayoffAccount::new();
        cc.add_discard(c.discard(TrustLevel::T1));
        let mut a = PayoffAccount::new();
        a.add_source(c.source(false));
        assert_eq!(b.fitness(), 2.0);
        assert_eq!(cc.fitness(), 3.0);
        assert_eq!(a.fitness(), 0.0);
    }

    #[test]
    fn fitness_is_the_event_average() {
        let mut acc = PayoffAccount::new();
        acc.add_source(5.0);
        acc.add_forward(1.0);
        acc.add_discard(3.0);
        acc.add_source(0.0);
        assert_eq!(acc.ne, 4);
        assert!((acc.fitness() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn empty_account_fitness_is_zero() {
        assert_eq!(PayoffAccount::new().fitness(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut acc = PayoffAccount::new();
        acc.add_source(5.0);
        acc.clear();
        assert_eq!(acc, PayoffAccount::new());
    }

    #[test]
    fn serde_roundtrip() {
        let c = PayoffConfig::paper();
        let json = serde_json::to_string(&c).unwrap();
        let back: PayoffConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn scaling_preserves_constraints_and_source_payoffs() {
        for factor in [0.25, 0.5, 2.0, 4.0] {
            let scaled = PayoffConfig::paper().scaled_intermediate(factor);
            scaled.check_paper_constraints().unwrap();
            assert_eq!(scaled.source(true), 5.0);
            assert_eq!(scaled.forward(TrustLevel::T3), 2.0 * factor);
            assert_eq!(scaled.discard(TrustLevel::T1), 3.0 * factor);
        }
        assert_eq!(
            PayoffConfig::paper().scaled_intermediate(1.0),
            PayoffConfig::paper()
        );
    }

    #[test]
    fn enumeration_contains_the_paper_table_but_not_the_literal_ocr() {
        let family = enumerate_reconstructions();
        assert!(
            family.contains(&PayoffConfig::paper()),
            "paper() is a member"
        );
        // The search winner is the family member with the 0.3 reading.
        assert!(family.contains(&PayoffConfig::best_fit()));
        // The literal OCR forward row is not monotone, so no candidate
        // equals it even though its digits are in the pools.
        assert!(!family.contains(&PayoffConfig::literal_ocr()));
    }

    #[test]
    fn best_fit_satisfies_all_prose_constraints() {
        PayoffConfig::best_fit().check_paper_constraints().unwrap();
    }

    #[test]
    fn enumeration_is_constraint_satisfying_deduplicated_and_ordered() {
        let family = enumerate_reconstructions();
        assert!(
            family.len() >= 20,
            "the search needs a non-trivial family, got {}",
            family.len()
        );
        for c in &family {
            c.check_paper_constraints().unwrap();
            assert_eq!((c.success, c.failure), (5.0, 0.0));
        }
        for pair in family.windows(2) {
            assert_eq!(
                key_cmp(&pair[0], &pair[1]),
                std::cmp::Ordering::Less,
                "family must be strictly ordered (sorted + deduplicated)"
            );
        }
        // Deterministic: a second enumeration is identical.
        assert_eq!(family, enumerate_reconstructions());
    }
}
