//! Payoff tables and payoff accounts (paper §4.2, Fig. 2).
//!
//! Two tables exist: the *source* table pays on transmission status
//! (S = 5 on success, F = 0 on failure) and the *intermediate* table pays
//! each decision depending on the decider's trust in the source.
//!
//! The intermediate table's numbers are OCR-garbled in the available
//! paper text; the defaults here are the reconstruction argued in
//! DESIGN.md (substitution 3):
//!
//! | decision | TL3 | TL2 | TL1 | TL0 |
//! |----------|-----|-----|-----|-----|
//! | forward  | 2.0 | 1.0 | 0.5 | 0.0 |
//! | discard  | 0.5 | 1.0 | 3.0 | 2.0 |
//!
//! satisfying every prose constraint: forwarding pays more the higher the
//! trust; discarding a *less trusted* (TL1) source pays more than
//! discarding an *untrusted* (TL0) one; discarding dominates forwarding
//! at low trust (enforcement) and loses at high trust. The literal OCR
//! reading and a no-reputation table are provided as presets for
//! ablations A1 and A4.

use ahn_net::TrustLevel;
use serde::{Deserialize, Serialize};

/// The payoff tables of Fig. 2, fully configurable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PayoffConfig {
    /// Source payoff when the packet reaches the destination (S).
    pub success: f64,
    /// Source payoff when it does not (F).
    pub failure: f64,
    /// Intermediate payoff for forwarding, indexed by trust level value
    /// (`forward[0]` = TL0 … `forward[3]` = TL3).
    pub forward: [f64; 4],
    /// Intermediate payoff for discarding, same indexing.
    pub discard: [f64; 4],
}

impl Default for PayoffConfig {
    fn default() -> Self {
        PayoffConfig::paper()
    }
}

impl PayoffConfig {
    /// The reconstructed paper table (see module docs / DESIGN.md).
    pub fn paper() -> Self {
        PayoffConfig {
            success: 5.0,
            failure: 0.0,
            forward: [0.0, 0.5, 1.0, 2.0],
            discard: [2.0, 3.0, 1.0, 0.5],
        }
    }

    /// The *literal* OCR reading of Fig. 2 (`C: 2 1 0.5 3`,
    /// `D: 0.5 1 3 2` for TL3..TL0) — ablation A1 demonstrates that its
    /// forward-for-TL0 = 3 cell undermines enforcement.
    pub fn literal_ocr() -> Self {
        PayoffConfig {
            success: 5.0,
            failure: 0.0,
            forward: [3.0, 0.5, 1.0, 2.0],
            discard: [2.0, 3.0, 1.0, 0.5],
        }
    }

    /// A table for a network *without* a reputation response mechanism:
    /// discarding pays more than forwarding at every trust level (§4.2:
    /// "If such system was not used, the payoff for selfish behavior ...
    /// would always be higher than for forwarding"). Ablation A4.
    pub fn no_reputation() -> Self {
        PayoffConfig {
            success: 5.0,
            failure: 0.0,
            forward: [0.5, 0.5, 0.5, 0.5],
            discard: [2.0, 2.0, 2.0, 2.0],
        }
    }

    /// Source payoff for a transmission status.
    #[inline]
    pub fn source(&self, delivered: bool) -> f64 {
        if delivered {
            self.success
        } else {
            self.failure
        }
    }

    /// Intermediate payoff for forwarding a packet from a source seen at
    /// `trust`.
    #[inline]
    pub fn forward(&self, trust: TrustLevel) -> f64 {
        self.forward[trust.value() as usize]
    }

    /// Intermediate payoff for discarding.
    #[inline]
    pub fn discard(&self, trust: TrustLevel) -> f64 {
        self.discard[trust.value() as usize]
    }

    /// Checks the prose constraints of §4.2 (used by tests; ablation
    /// presets intentionally violate some of them):
    /// forwarding payoff non-decreasing in trust, discard(TL1) >
    /// discard(TL0), enforcement at the extremes.
    pub fn check_paper_constraints(&self) -> Result<(), String> {
        for w in self.forward.windows(2) {
            if w[1] < w[0] {
                return Err(format!(
                    "forward payoffs not monotone in trust: {:?}",
                    self.forward
                ));
            }
        }
        if self.discard[1] <= self.discard[0] {
            return Err("discard(TL1) must exceed discard(TL0)".into());
        }
        if self.discard[0] <= self.forward[0] {
            return Err("discarding must dominate forwarding at TL0".into());
        }
        if self.forward[3] <= self.discard[3] {
            return Err("forwarding must dominate discarding at TL3".into());
        }
        Ok(())
    }
}

/// Per-player payoff account implementing the fitness function (eq. 1):
/// `fitness = (tps + tpf + tpd) / ne`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PayoffAccount {
    /// Total payoff received for sending own packets.
    pub tps: f64,
    /// Total payoff received for forwarding others' packets.
    pub tpf: f64,
    /// Total payoff received for discarding others' packets.
    pub tpd: f64,
    /// Number of events (own packets sent + packets forwarded +
    /// packets discarded).
    pub ne: u64,
}

impl PayoffAccount {
    /// Creates a zeroed account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one own-packet transmission.
    pub fn add_source(&mut self, payoff: f64) {
        self.tps += payoff;
        self.ne += 1;
    }

    /// Accounts one forward.
    pub fn add_forward(&mut self, payoff: f64) {
        self.tpf += payoff;
        self.ne += 1;
    }

    /// Accounts one discard.
    pub fn add_discard(&mut self, payoff: f64) {
        self.tpd += payoff;
        self.ne += 1;
    }

    /// The fitness value (eq. 1); 0 when no events occurred.
    pub fn fitness(&self) -> f64 {
        if self.ne == 0 {
            0.0
        } else {
            (self.tps + self.tpf + self.tpd) / self.ne as f64
        }
    }

    /// Resets the account (start of a generation).
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_satisfies_all_prose_constraints() {
        PayoffConfig::paper().check_paper_constraints().unwrap();
    }

    #[test]
    fn literal_ocr_table_breaks_enforcement_at_tl0() {
        let c = PayoffConfig::literal_ocr();
        let err = c.check_paper_constraints().unwrap_err();
        assert!(err.contains("monotone") || err.contains("TL0"), "{err}");
        // Specifically: forwarding for an untrusted source pays the most.
        assert!(c.forward(TrustLevel::T0) > c.discard(TrustLevel::T0));
    }

    #[test]
    fn no_reputation_table_makes_discarding_dominant_everywhere() {
        let c = PayoffConfig::no_reputation();
        for t in TrustLevel::ALL {
            assert!(c.discard(t) > c.forward(t), "{t}");
        }
    }

    #[test]
    fn source_payoffs_are_the_stated_s_and_f() {
        let c = PayoffConfig::paper();
        assert_eq!(c.source(true), 5.0);
        assert_eq!(c.source(false), 0.0);
    }

    #[test]
    fn intermediate_lookups_by_trust() {
        let c = PayoffConfig::paper();
        assert_eq!(c.forward(TrustLevel::T3), 2.0);
        assert_eq!(c.forward(TrustLevel::T1), 0.5);
        assert_eq!(c.discard(TrustLevel::T1), 3.0);
        assert_eq!(c.discard(TrustLevel::T0), 2.0);
        assert_eq!(c.discard(TrustLevel::T3), 0.5);
    }

    #[test]
    fn fig2_example_game_payoffs() {
        // Fig. 2b: B forwards with TL3 -> 2.0; C discards with TL1 -> 3.0;
        // source fails -> 0.
        let c = PayoffConfig::paper();
        let mut b = PayoffAccount::new();
        b.add_forward(c.forward(TrustLevel::T3));
        let mut cc = PayoffAccount::new();
        cc.add_discard(c.discard(TrustLevel::T1));
        let mut a = PayoffAccount::new();
        a.add_source(c.source(false));
        assert_eq!(b.fitness(), 2.0);
        assert_eq!(cc.fitness(), 3.0);
        assert_eq!(a.fitness(), 0.0);
    }

    #[test]
    fn fitness_is_the_event_average() {
        let mut acc = PayoffAccount::new();
        acc.add_source(5.0);
        acc.add_forward(1.0);
        acc.add_discard(3.0);
        acc.add_source(0.0);
        assert_eq!(acc.ne, 4);
        assert!((acc.fitness() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn empty_account_fitness_is_zero() {
        assert_eq!(PayoffAccount::new().fitness(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut acc = PayoffAccount::new();
        acc.add_source(5.0);
        acc.clear();
        assert_eq!(acc, PayoffAccount::new());
    }

    #[test]
    fn serde_roundtrip() {
        let c = PayoffConfig::paper();
        let json = serde_json::to_string(&c).unwrap();
        let back: PayoffConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
