//! Tournament environments and the multi-environment evaluation schedule
//! (paper §4.4, Fig. 3, and Table 1).
//!
//! Environments differ only in their CSN count; the tournament size is
//! fixed (50 in the paper):
//!
//! | environment | CSN | normal |
//! |-------------|-----|--------|
//! | TE1         | 0   | 50     |
//! | TE2         | 10  | 40     |
//! | TE3         | 25  | 25     |
//! | TE4         | 30  | 20     |
//!
//! The evaluation scheme plays the whole population (N = 100) through a
//! sequence of environments: in each environment, tournaments of `P_i`
//! normal players (drawn among those who have played fewer than `L`
//! times) plus `S_i` CSN are run until everyone has played `L` times. The
//! paper leaves `L` unspecified; we default to 1 (DESIGN.md §1) and fill
//! short tournaments with the least-played players.

use crate::arena::Arena;
use crate::tournament::{RoundScratch, Tournament};
use ahn_net::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One tournament environment: `size` participants of which `csn` are
/// constantly selfish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvironmentSpec {
    /// Total participants per tournament (paper: 50).
    pub size: usize,
    /// Constantly selfish participants.
    pub csn: usize,
}

impl EnvironmentSpec {
    /// Builds a spec.
    ///
    /// # Panics
    /// Panics unless `csn < size` and at least 3 participants exist.
    pub fn new(size: usize, csn: usize) -> Self {
        assert!(size >= 3, "environments need at least 3 participants");
        assert!(
            csn < size,
            "an environment needs at least one normal player"
        );
        EnvironmentSpec { size, csn }
    }

    /// Normal players per tournament (`P_i = T − S_i`).
    pub fn normal(&self) -> usize {
        self.size - self.csn
    }

    /// Table 1's environments, 1-indexed like the paper.
    ///
    /// # Panics
    /// Panics unless `1 <= i <= 4`.
    pub fn paper_te(i: usize) -> Self {
        match i {
            1 => EnvironmentSpec::new(50, 0),
            2 => EnvironmentSpec::new(50, 10),
            3 => EnvironmentSpec::new(50, 25),
            4 => EnvironmentSpec::new(50, 30),
            _ => panic!("the paper defines TE1..TE4, not TE{i}"),
        }
    }

    /// All four paper environments in order.
    pub fn paper_all() -> Vec<Self> {
        (1..=4).map(Self::paper_te).collect()
    }
}

/// Reusable participant-selection buffers for
/// [`EvaluationSchedule::run_with_scratch`], sized once (at the first
/// generation's high-water mark) and reused for the rest of the run —
/// at 1 000-node scale the per-generation churn of five fresh vectors
/// is measurable, and the experiment loop aims for zero steady-state
/// allocations.
#[derive(Debug, Default, Clone)]
pub struct ScheduleScratch {
    /// Selfish-pool node ids (constant per arena, cached here).
    csn_pool: Vec<NodeId>,
    /// Tournaments played so far per normal player, this environment.
    plays: Vec<u32>,
    /// Players still below the `plays_per_env` target.
    eligible: Vec<NodeId>,
    /// The tournament being assembled.
    participants: Vec<NodeId>,
    /// Fill-up pool for the last, short tournament of an environment.
    rest: Vec<NodeId>,
    /// Per-tournament game/awake buffers, shared by every tournament of
    /// the run.
    round: RoundScratch,
}

/// The evaluation schedule: which environments are played, for how many
/// rounds, and how many times each player must appear per environment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvaluationSchedule {
    /// Environment sequence (the `E` environments of Fig. 3).
    pub envs: Vec<EnvironmentSpec>,
    /// Rounds per tournament (`R`, paper: 300).
    pub rounds: usize,
    /// Times each player plays per environment (`L`, defaulted to 1).
    pub plays_per_env: usize,
}

impl EvaluationSchedule {
    /// Builds a schedule.
    ///
    /// # Panics
    /// Panics on an empty environment list or zero rounds/plays.
    pub fn new(envs: Vec<EnvironmentSpec>, rounds: usize, plays_per_env: usize) -> Self {
        assert!(!envs.is_empty(), "at least one environment is required");
        assert!(
            rounds > 0 && plays_per_env > 0,
            "rounds and plays must be positive"
        );
        EvaluationSchedule {
            envs,
            rounds,
            plays_per_env,
        }
    }

    /// Largest CSN pool any environment needs — the arena must reserve
    /// this many selfish nodes.
    pub fn required_csn(&self) -> usize {
        self.envs.iter().map(|e| e.csn).max().unwrap_or(0)
    }

    /// Evaluates the arena's current strategies: clears per-generation
    /// state, then plays every environment in order until every normal
    /// player appeared `plays_per_env` times in each (§4.4's scheme).
    ///
    /// Fitness accumulates in `arena.payoffs`; metrics in
    /// `arena.metrics` (environment index = position in `envs`).
    ///
    /// # Panics
    /// Panics if the arena's population or CSN pool is too small for the
    /// schedule.
    pub fn run<R: Rng + ?Sized>(&self, arena: &mut Arena, rng: &mut R) {
        self.run_with_scratch(arena, rng, &mut ScheduleScratch::default());
    }

    /// [`EvaluationSchedule::run`] with caller-owned selection buffers:
    /// pass the same [`ScheduleScratch`] every generation and the
    /// schedule performs no steady-state allocations. Draw-identical to
    /// `run` — buffer reuse never changes contents or RNG consumption.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        arena: &mut Arena,
        rng: &mut R,
        scratch: &mut ScheduleScratch,
    ) {
        let n = arena.n_normal();
        scratch.csn_pool.clear();
        scratch.csn_pool.extend(arena.selfish_ids());
        assert!(
            scratch.csn_pool.len() >= self.required_csn(),
            "arena has {} selfish nodes, schedule needs {}",
            scratch.csn_pool.len(),
            self.required_csn()
        );
        assert_eq!(
            arena.metrics.n_envs(),
            self.envs.len(),
            "arena metrics must be sized for the schedule's environments"
        );
        arena.begin_generation();

        let tournament = Tournament::new(self.rounds);
        scratch.plays.clear();
        scratch.plays.resize(n, 0);
        let plays = &mut scratch.plays;
        let eligible = &mut scratch.eligible;
        let participants = &mut scratch.participants;

        for (env_idx, env) in self.envs.iter().enumerate() {
            assert!(
                env.normal() <= n,
                "environment needs {} normal players, population has {n}",
                env.normal()
            );
            plays.fill(0);
            let target = self.plays_per_env as u32;
            loop {
                eligible.clear();
                eligible.extend(
                    (0..n)
                        .map(NodeId::from)
                        .filter(|id| plays[id.index()] < target),
                );
                if eligible.is_empty() {
                    break;
                }
                participants.clear();
                if eligible.len() >= env.normal() {
                    // Uniform sample of P_i eligible players.
                    let (chosen, _) = eligible.partial_shuffle(rng, env.normal());
                    participants.extend_from_slice(chosen);
                } else {
                    // Last tournament of this environment: take everyone
                    // still eligible and fill with the least-played rest.
                    participants.extend_from_slice(eligible);
                    scratch.rest.clear();
                    scratch.rest.extend(
                        (0..n)
                            .map(NodeId::from)
                            .filter(|id| plays[id.index()] >= target),
                    );
                    scratch.rest.shuffle(rng);
                    scratch.rest.sort_by_key(|id| plays[id.index()]);
                    participants.extend(scratch.rest.iter().take(env.normal() - eligible.len()));
                }
                for id in participants.iter() {
                    plays[id.index()] += 1;
                }
                participants.extend_from_slice(&scratch.csn_pool[..env.csn]);
                tournament.run_with_scratch(arena, rng, participants, env_idx, &mut scratch.round);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::GameConfig;
    use ahn_net::PathMode;
    use ahn_strategy::Strategy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn paper_te_specs_match_table_1() {
        assert_eq!(
            EnvironmentSpec::paper_te(1),
            EnvironmentSpec { size: 50, csn: 0 }
        );
        assert_eq!(
            EnvironmentSpec::paper_te(2),
            EnvironmentSpec { size: 50, csn: 10 }
        );
        assert_eq!(
            EnvironmentSpec::paper_te(3),
            EnvironmentSpec { size: 50, csn: 25 }
        );
        assert_eq!(
            EnvironmentSpec::paper_te(4),
            EnvironmentSpec { size: 50, csn: 30 }
        );
        assert_eq!(EnvironmentSpec::paper_te(2).normal(), 40);
        assert_eq!(EnvironmentSpec::paper_all().len(), 4);
    }

    #[test]
    #[should_panic(expected = "TE1..TE4")]
    fn te5_does_not_exist() {
        let _ = EnvironmentSpec::paper_te(5);
    }

    #[test]
    fn required_csn_is_the_max() {
        let s = EvaluationSchedule::new(EnvironmentSpec::paper_all(), 10, 1);
        assert_eq!(s.required_csn(), 30);
    }

    /// Small-scale version of the paper's setup: population 20,
    /// tournament size 10.
    fn small_schedule(csn_counts: &[usize]) -> EvaluationSchedule {
        EvaluationSchedule::new(
            csn_counts
                .iter()
                .map(|&c| EnvironmentSpec::new(10, c))
                .collect(),
            5,
            1,
        )
    }

    fn small_arena(n: usize, csn: usize, n_envs: usize) -> Arena {
        Arena::new(
            vec![Strategy::always_forward(); n],
            csn,
            GameConfig::paper(PathMode::Shorter),
            n_envs,
        )
    }

    #[test]
    fn every_player_plays_at_least_l_times_per_env() {
        // CSN-free environments so every sourced packet is delivered and
        // tps / 5 counts source events exactly.
        let schedule = small_schedule(&[0, 0]);
        let mut arena = small_arena(20, 0, 2);
        schedule.run(&mut arena, &mut rng(0));
        // Every normal player sourced >= rounds * plays_per_env * n_envs
        // games: ne >= source events alone.
        for i in 0..20 {
            let source_events = arena.payoffs[i].tps / 5.0; // every source event pays S=5 in an all-cooperator world
            assert!(
                source_events >= (5 * 2) as f64,
                "player {i} sourced only {source_events}"
            );
        }
    }

    #[test]
    fn uneven_population_fills_last_tournament() {
        // 25 players, tournaments of 10 normals: 3 tournaments per env,
        // the last filled with 5 repeat players.
        let schedule = small_schedule(&[0]);
        let mut arena = small_arena(25, 0, 1);
        schedule.run(&mut arena, &mut rng(1));
        // Total nn source games = 3 tournaments x 10 participants x 5 rounds.
        assert_eq!(arena.metrics.env(0).nn_games, 150);
    }

    #[test]
    fn metrics_split_per_environment() {
        let schedule = small_schedule(&[0, 8]);
        let mut arena = small_arena(20, 8, 2);
        schedule.run(&mut arena, &mut rng(2));
        let clean = arena.metrics.env(0);
        let hostile = arena.metrics.env(1);
        assert!(
            clean.cooperation_level() > 0.95,
            "CSN-free env should deliver"
        );
        assert!(
            hostile.cooperation_level() < clean.cooperation_level(),
            "80% CSN env must hurt cooperation: {} vs {}",
            hostile.cooperation_level(),
            clean.cooperation_level()
        );
        assert_eq!(clean.from_csn.total(), 0, "no CSN sources in TE-clean");
        assert!(hostile.from_csn.total() > 0);
    }

    #[test]
    fn run_clears_previous_generation() {
        let schedule = small_schedule(&[0]);
        let mut arena = small_arena(20, 0, 1);
        schedule.run(&mut arena, &mut rng(3));
        let first = arena.metrics.env(0).nn_games;
        schedule.run(&mut arena, &mut rng(4));
        assert_eq!(arena.metrics.env(0).nn_games, first, "counters must reset");
    }

    #[test]
    #[should_panic(expected = "selfish nodes")]
    fn arena_too_small_for_schedule_panics() {
        let schedule = small_schedule(&[5]);
        let mut arena = small_arena(20, 2, 1);
        schedule.run(&mut arena, &mut rng(5));
    }

    #[test]
    #[should_panic(expected = "metrics must be sized")]
    fn env_count_mismatch_panics() {
        let schedule = small_schedule(&[0, 1]);
        let mut arena = small_arena(20, 1, 1);
        schedule.run(&mut arena, &mut rng(6));
    }

    #[test]
    fn determinism_under_seed() {
        let run = |seed| {
            let schedule = small_schedule(&[0, 4]);
            let mut arena = small_arena(20, 4, 2);
            schedule.run(&mut arena, &mut rng(seed));
            (arena.fitnesses(), arena.metrics.total())
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "at least one normal")]
    fn all_csn_environment_is_rejected() {
        let _ = EnvironmentSpec::new(10, 10);
    }
}
