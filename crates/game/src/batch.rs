//! Batched round evaluation: a full tournament round as one kernel.
//!
//! [`play_round`] plays every participant's game of a round back to
//! back, drawing the *exact same* seeded RNG sequence and producing the
//! *exact same* arena mutations as the scalar loop
//! `for source { play_game(..) }` — goldens pass unregenerated — while
//! eliminating the scalar path's per-game O(N) work:
//!
//! * **No relay-pool copy.** `play_game` memcpys the participant list
//!   and `retain`s out the source and destination for every game (4 KB
//!   copied per game at N = 1000). The batch kernel never materializes
//!   the pool: a relay pool is just the participant array with two
//!   positions deleted, so element `j` of the virtual pool is
//!   `participants[j + (j >= p1) + (j >= p2)]` — two compares instead
//!   of a copy.
//! * **No per-candidate buffer copy.** The path model partial-shuffles
//!   a fresh pool copy per candidate. Only `relays ≤ 9` positions and
//!   their swap partners are ever touched, so the kernel simulates the
//!   Fisher–Yates swaps on a tiny *overlay* (position → node pairs,
//!   linear-scanned fixed arrays) over the virtual pool and reads the
//!   shuffled tail straight out of it — same swaps, same draws, ~30
//!   touched words instead of an N-element copy per candidate.
//! * **Bit-parallel strategy decode.** Decisions read the arena's flat
//!   `u16` genome array ([`Arena::strategy_mask`]): the (trust,
//!   activity) cell of paper bit `b` is one shift of a 2-byte word,
//!   `(mask >> (12 - b)) & 1`, instead of a `Strategy` struct load and
//!   bit-string indexing per decision.
//! * **Table-driven payoff accumulation.** The settlement pass indexes
//!   the payoff tables by (decision, trust) directly — the same
//!   `PayoffConfig` lookups as the scalar pass, in the same order, so
//!   float accumulation is bit-identical.
//!
//! The round structure itself is untouched: games stay sequential
//! because each decision reads the reputation the *previous* games
//! wrote (§4.4). Batching here means amortizing setup, not reordering
//! play.

use crate::arena::Arena;
use crate::metrics::ReqCounts;
use ahn_net::watchdog::{apply_route_outcome, RouteOutcome};
use ahn_net::{NodeId, RouteSelection, TrustLevel};
use ahn_strategy::{Decision, UNKNOWN_BIT};
use rand::Rng;

/// Most intermediates per candidate the kernel supports: the paper's
/// longest path is 10 hops = 9 relays; a margin is kept for custom hop
/// distributions. [`round_supported`] gates on this.
pub const MAX_RELAYS: usize = 16;

/// Most candidate paths per game (Table 3's rows are over 1..=3 paths,
/// and `AltPathDist` samples from fixed 3-column rows).
pub const MAX_CANDIDATES: usize = 3;

/// Overlay capacity: the overlay only tracks positions *below* the
/// shuffled tail (the tail itself lives in a flat array), and each
/// Fisher–Yates step swaps out at most one such position.
const MAX_OVERLAY: usize = MAX_RELAYS;

/// Fixed-size working state for [`play_round`] — no heap, no
/// steady-state growth, so a batched round allocates nothing from the
/// first game on (tests/zero_alloc.rs).
#[derive(Debug, Clone)]
pub struct BatchScratch {
    /// Virtual-pool positions with a pending Fisher–Yates swap result.
    overlay_pos: [usize; MAX_OVERLAY],
    /// The node currently at the corresponding overlaid position.
    overlay_val: [NodeId; MAX_OVERLAY],
    overlay_len: usize,
    /// Candidate intermediate lists (path order).
    cand: [[NodeId; MAX_RELAYS]; MAX_CANDIDATES],
    /// Decision trace of the chosen path, one entry per relay that
    /// received the packet.
    decisions: [(Decision, TrustLevel); MAX_RELAYS],
}

impl Default for BatchScratch {
    fn default() -> Self {
        BatchScratch {
            overlay_pos: [0; MAX_OVERLAY],
            overlay_val: [NodeId(0); MAX_OVERLAY],
            overlay_len: 0,
            cand: [[NodeId(0); MAX_RELAYS]; MAX_CANDIDATES],
            decisions: [(Decision::Discard, TrustLevel::T0); MAX_RELAYS],
        }
    }
}

impl BatchScratch {
    /// The node at virtual-pool position `pos`, if a swap has moved one
    /// there.
    #[inline]
    fn overlay_get(&self, pos: usize) -> Option<NodeId> {
        self.overlay_pos[..self.overlay_len]
            .iter()
            .position(|&p| p == pos)
            .map(|k| self.overlay_val[k])
    }

    /// Places `val` at virtual-pool position `pos`.
    #[inline]
    fn overlay_set(&mut self, pos: usize, val: NodeId) {
        for k in 0..self.overlay_len {
            if self.overlay_pos[k] == pos {
                self.overlay_val[k] = val;
                return;
            }
        }
        let k = self.overlay_len;
        self.overlay_pos[k] = pos;
        self.overlay_val[k] = val;
        self.overlay_len = k + 1;
    }
}

/// Element `j` of the virtual relay pool: the participant list with the
/// two positions `p1 < p2` (source and destination) deleted,
/// order-preserving — exactly what the scalar path's
/// `extend_from_slice` + `retain` builds.
#[inline]
fn pool_node(participants: &[NodeId], p1: usize, p2: usize, j: usize) -> NodeId {
    let mut m = j;
    if m >= p1 {
        m += 1;
    }
    if m >= p2 {
        m += 1;
    }
    participants[m]
}

/// `true` when [`play_round`] can evaluate rounds under `arena`'s
/// configuration: the hop model must fit the kernel's fixed relay
/// buffers, and every node must be one of the three context-free kinds
/// the kernel decodes. The paper's modes (≤ 10 hops, Normal/CSN/dropper
/// populations) always qualify; adversary-zoo kinds need per-game
/// context (source identity, round clock) and take the scalar path.
#[inline]
pub fn round_supported(arena: &Arena) -> bool {
    arena.config.paths.lengths.max_hops() <= MAX_RELAYS + 1 && arena.all_kinds_batchable()
}

/// Plays one full tournament round — every participant sources exactly
/// one game, in participant order — charging metrics to environment
/// `env`. Draw-for-draw and mutation-for-mutation identical to the
/// scalar loop `for &s in participants { play_game(arena, rng, s, ..) }`.
///
/// # Panics
/// Panics if `participants` has fewer than three nodes, or if the hop
/// model exceeds the kernel's capacity (see [`round_supported`]).
pub fn play_round<R: Rng + ?Sized>(
    arena: &mut Arena,
    rng: &mut R,
    participants: &[NodeId],
    env: usize,
    scratch: &mut BatchScratch,
) {
    assert!(
        participants.len() >= 3,
        "a game needs a source, a destination and a relay candidate"
    );
    assert!(
        round_supported(arena),
        "hop model exceeds the batch kernel's {} relay capacity",
        MAX_RELAYS
    );
    for src_pos in 0..participants.len() {
        play_game_batched(arena, rng, src_pos, participants, env, scratch);
    }
}

/// One game of the batched round; `src_pos` is the source's position in
/// `participants` (the batch layout's substitute for the scalar path's
/// `retain` scan).
fn play_game_batched<R: Rng + ?Sized>(
    arena: &mut Arena,
    rng: &mut R,
    src_pos: usize,
    participants: &[NodeId],
    env: usize,
    scratch: &mut BatchScratch,
) {
    let len = participants.len();
    let source = participants[src_pos];

    // Step 2 of the tournament scheme: random destination by rejection —
    // the same draws as the scalar path, but the *position* is kept so
    // the pool never needs materializing.
    let mut d_pos;
    let destination = loop {
        d_pos = rng.gen_range(0..len);
        let d = participants[d_pos];
        if d != source {
            break d;
        }
    };
    let (p1, p2) = if src_pos < d_pos {
        (src_pos, d_pos)
    } else {
        (d_pos, src_pos)
    };
    let pool_len = len - 2;

    // Steps 2–3: candidate paths. Same hop-count and candidate-count
    // draws as `PathGenerator::generate_into`, then one overlaid partial
    // Fisher–Yates per candidate (same `gen_range(0..=i)` draw per swap
    // as `partial_shuffle`).
    let hops = arena.config.paths.lengths.sample(rng);
    let relays = (hops - 1).min(pool_len);
    let n_paths = arena.config.paths.alternates.sample(rng, relays + 1);
    debug_assert!(relays <= MAX_RELAYS && n_paths <= MAX_CANDIDATES);
    let start = pool_len - relays;
    for c in 0..n_paths {
        // The shuffled tail `start..pool_len` — the relays this candidate
        // reads — lives in a flat stack array; the overlay map only
        // tracks values swapped out to positions below `start` (at most
        // one per Fisher–Yates step).
        let mut tail = [NodeId(0); MAX_RELAYS];
        for (k, slot) in tail[..relays].iter_mut().enumerate() {
            *slot = pool_node(participants, p1, p2, start + k);
        }
        scratch.overlay_len = 0;
        for i in (start..pool_len).rev() {
            let j = rng.gen_range(0..=i);
            let vi = tail[i - start];
            if j >= start {
                tail[i - start] = tail[j - start];
                tail[j - start] = vi;
            } else {
                tail[i - start] = scratch
                    .overlay_get(j)
                    .unwrap_or_else(|| pool_node(participants, p1, p2, j));
                scratch.overlay_set(j, vi);
            }
        }
        // relays == 0 leaves an empty candidate, like the scalar path.
        scratch.cand[c][..relays].copy_from_slice(&tail[..relays]);
    }

    // Path selection: identical rating products (same multiplication
    // order over the same candidate order) and tie-breaking as
    // `RouteSelection::select_from`.
    let best = match arena.config.route_selection {
        RouteSelection::BestRated => {
            let mut best = 0;
            let mut best_rating = f64::NEG_INFINITY;
            for (c, cand) in scratch.cand[..n_paths].iter().enumerate() {
                let mut r = 1.0_f64;
                for &node in &cand[..relays] {
                    r *= arena.reputation.rate_or_unknown(source, node);
                }
                if r > best_rating {
                    best_rating = r;
                    best = c;
                }
            }
            best
        }
        RouteSelection::Random => rng.gen_range(0..n_paths),
    };

    // Step 4: sequential decisions along the chosen path, decoded off
    // the flat mask array. `Strategy::encode` stores paper bit `b` at
    // integer bit `12 - b`, so a cell lookup is one shift of a u16.
    let mut outcome = RouteOutcome::Delivered;
    let mut n_decided = 0usize;
    for k in 0..relays {
        let node = scratch.cand[best][k];
        let (rate, forwarded) = arena.reputation.rate_and_forwarded(node, source);
        let trust = arena.config.trust.level_opt(rate);
        let decision = match arena.kind(node) {
            crate::players::NodeKind::Normal => {
                let mask = arena.strategy_mask(node);
                let bit_index = match rate {
                    None => UNKNOWN_BIT,
                    Some(_) => {
                        let activity = arena.config.activity.classify_opt(
                            f64::from(forwarded),
                            arena.reputation.mean_forwarded_of_known(node),
                        );
                        trust.value() as usize * 3 + activity.value() as usize
                    }
                };
                Decision::from_bit((mask >> (UNKNOWN_BIT - bit_index)) & 1 == 1)
            }
            crate::players::NodeKind::ConstantlySelfish => Decision::Discard,
            crate::players::NodeKind::RandomDropper(p) => {
                // Same single `gen_bool` draw as `fixed_decision`.
                if rng.gen_bool(p) {
                    Decision::Discard
                } else {
                    Decision::Forward
                }
            }
            // Unreachable: `round_supported` rejects arenas holding any
            // adversary-zoo kind, forcing the scalar path that carries
            // the context (source kind, round clock) they need.
            crate::players::NodeKind::Liar
            | crate::players::NodeKind::Colluder(_)
            | crate::players::NodeKind::OnOff { .. }
            | crate::players::NodeKind::Whitewasher { .. }
            | crate::players::NodeKind::Flooder { .. } => {
                unreachable!("zoo kinds are gated out of the batched kernel")
            }
        };
        scratch.decisions[k] = (decision, trust);
        n_decided = k + 1;
        if decision == Decision::Discard {
            outcome = RouteOutcome::DroppedAt(k);
            break;
        }
    }

    // Step 5 + metrics: the same fused settlement pass as the scalar
    // kernel — identical accumulation order keeps every float
    // bit-identical.
    let delivered = outcome.delivered();
    arena.payoffs[source.index()].add_source(arena.config.payoff.source(delivered));
    arena.energy[source.index()].add_tx();
    let mut req = ReqCounts::default();
    let mut csn_free = true;
    for k in 0..relays {
        let node = scratch.cand[best][k];
        let kind = arena.kind(node);
        csn_free &= !kind.is_csn();
        if k < n_decided {
            let (decision, trust) = scratch.decisions[k];
            match decision {
                Decision::Forward => {
                    arena.payoffs[node.index()].add_forward(arena.config.payoff.forward(trust));
                    arena.energy[node.index()].add_forward();
                    req.accepted += 1;
                }
                Decision::Discard => {
                    arena.payoffs[node.index()].add_discard(arena.config.payoff.discard(trust));
                    arena.energy[node.index()].add_discard();
                    if kind.is_normal() {
                        req.rejected_by_nn += 1;
                    } else {
                        req.rejected_by_csn += 1;
                    }
                }
            }
        }
    }
    if delivered {
        arena.energy[destination.index()].add_rx();
    }

    let source_normal = arena.kind(source).is_normal();
    {
        let m = arena.metrics.env_mut(env);
        if source_normal {
            m.nn_games += 1;
            if delivered {
                m.nn_delivered += 1;
            }
            if csn_free {
                m.nn_csn_free_path += 1;
            }
            m.from_nn.merge(&req);
        } else {
            m.from_csn.merge(&req);
        }
    }

    // Step 6: watchdog reputation updates.
    apply_route_outcome(
        &mut arena.reputation,
        source,
        &scratch.cand[best][..relays],
        outcome,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::GameConfig;
    use crate::game::{play_game, Scratch};
    use crate::players::NodeKind;
    use ahn_net::PathMode;
    use ahn_strategy::Strategy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn arena(n_normal: usize, csn: usize, mode: PathMode, seed: u64) -> Arena {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let strategies = (0..n_normal).map(|_| Strategy::random(&mut rng)).collect();
        Arena::new(strategies, csn, GameConfig::paper(mode), 1)
    }

    /// The load-bearing claim: a batched round consumes the same draws
    /// and produces the same arena as the scalar per-game loop.
    fn assert_round_equivalence(mut a_scalar: Arena, rounds: usize, seed: u64) {
        let mut a_batch = a_scalar.clone();
        let n = a_scalar.n_total();
        let participants: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let mut rng_s = ChaCha8Rng::seed_from_u64(seed);
        let mut rng_b = ChaCha8Rng::seed_from_u64(seed);
        let mut scratch_s = Scratch::default();
        let mut scratch_b = BatchScratch::default();
        for _ in 0..rounds {
            for &source in &participants {
                play_game(
                    &mut a_scalar,
                    &mut rng_s,
                    source,
                    &participants,
                    0,
                    &mut scratch_s,
                );
            }
            play_round(&mut a_batch, &mut rng_b, &participants, 0, &mut scratch_b);
        }
        assert_eq!(a_scalar.payoffs, a_batch.payoffs);
        assert_eq!(a_scalar.energy, a_batch.energy);
        assert_eq!(a_scalar.metrics.env(0), a_batch.metrics.env(0));
        for o in 0..n as u32 {
            for s in 0..n as u32 {
                assert_eq!(
                    a_scalar.reputation.record(NodeId(o), NodeId(s)),
                    a_batch.reputation.record(NodeId(o), NodeId(s)),
                    "reputation record n{o} -> n{s} diverged"
                );
            }
        }
        // Both RNGs must sit at the same stream position.
        use rand::Rng as _;
        assert_eq!(rng_s.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn batched_round_matches_scalar_shorter_paths() {
        assert_round_equivalence(arena(40, 10, PathMode::Shorter, 1), 5, 42);
    }

    #[test]
    fn batched_round_matches_scalar_longer_paths() {
        assert_round_equivalence(arena(40, 10, PathMode::Longer, 2), 5, 7);
    }

    #[test]
    fn batched_round_matches_scalar_tiny_pool() {
        // 3 participants: the relay pool is a single node and hop counts
        // clamp hard — the overlay's degenerate corner.
        assert_round_equivalence(arena(3, 0, PathMode::Longer, 3), 10, 11);
    }

    #[test]
    fn batched_round_matches_scalar_with_droppers_and_random_selection() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let strategies: Vec<Strategy> = (0..8).map(|_| Strategy::random(&mut rng)).collect();
        let mut kinds = vec![NodeKind::Normal; 8];
        kinds.push(NodeKind::RandomDropper(0.4));
        kinds.push(NodeKind::ConstantlySelfish);
        let mut config = GameConfig::paper(PathMode::Longer);
        config.route_selection = RouteSelection::Random;
        let a = Arena::with_kinds(strategies, kinds, config, 1);
        assert_round_equivalence(a, 8, 13);
    }

    #[test]
    fn paper_modes_are_supported() {
        assert!(round_supported(&arena(5, 0, PathMode::Shorter, 0)));
        assert!(round_supported(&arena(5, 0, PathMode::Longer, 0)));
    }

    #[test]
    fn virtual_pool_matches_retain() {
        let participants: Vec<NodeId> = (0..10u32).map(NodeId).collect();
        for p1 in 0..9 {
            for p2 in (p1 + 1)..10 {
                let mut expect = participants.clone();
                expect.retain(|&n| n != participants[p1] && n != participants[p2]);
                let got: Vec<NodeId> = (0..8)
                    .map(|j| pool_node(&participants, p1, p2, j))
                    .collect();
                assert_eq!(got, expect, "p1={p1} p2={p2}");
            }
        }
    }
}
