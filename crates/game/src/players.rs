//! Node kinds (paper §4.3) and per-player state.
//!
//! The paper uses two kinds: *normal nodes* (NN) that follow an evolving
//! strategy, and *constantly selfish nodes* (CSN) that always discard and
//! never take part in selection/reproduction. The *random dropper* is an
//! extension kind (not in the paper) used by robustness tests: it drops
//! with a fixed probability irrespective of reputation.
//!
//! The remaining kinds are the adversary zoo (DESIGN.md "Scenarios"):
//! attacker behaviors from the watchdog/CONFIDANT/CORE literature the
//! paper's related-work section cites, each occupying a CSN slot (tail
//! ids, excluded from evolution) but misbehaving in its own way. Their
//! relay decisions are deterministic — only [`NodeKind::RandomDropper`]
//! consumes randomness — so adding them leaves the base model's seeded
//! draw sequences untouched.

use ahn_strategy::Decision;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The behavioral class of a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Plays its evolving 13-bit strategy (NN).
    Normal,
    /// Always discards; immune to evolution (CSN).
    ConstantlySelfish,
    /// Extension: drops each forwarding request independently with this
    /// probability, ignoring reputation entirely.
    RandomDropper(f64),
    /// Liar/poisoner: forwards faithfully (buying a spotless first-hand
    /// record) while slandering normal nodes and vouching for fellow
    /// liars whenever it is picked as a gossip teller. Inert without a
    /// gossip extension — the watchdog never believes hearsay.
    Liar,
    /// Colluding clique member: forwards only for members of its own
    /// clique, discards for everyone else, and vouches for clique-mates
    /// when gossiping. The payload is the clique id.
    Colluder(u8),
    /// On-off ("grudger") defector: forwards for `on` rounds, then
    /// discards for `off` rounds, repeating — probing how fast
    /// reputation tracks intermittent defection.
    OnOff {
        /// Rounds per cycle spent cooperating.
        on: u16,
        /// Rounds per cycle spent defecting.
        off: u16,
    },
    /// Whitewasher: always discards, and every `period` rounds its
    /// public history is wiped (everyone forgets it), as if it rejoined
    /// under a fresh identity.
    Whitewasher {
        /// Rounds between identity resets.
        period: u16,
    },
    /// Energy-exhaustion attacker: always discards as a relay and
    /// sources `extra` additional packets per round, burning relay
    /// batteries while contributing nothing.
    Flooder {
        /// Extra packets sourced per round beyond the normal share.
        extra: u8,
    },
}

impl NodeKind {
    /// `true` for the paper's CSN kind.
    #[inline]
    pub fn is_csn(self) -> bool {
        matches!(self, NodeKind::ConstantlySelfish)
    }

    /// `true` for strategy-driven normal nodes.
    #[inline]
    pub fn is_normal(self) -> bool {
        matches!(self, NodeKind::Normal)
    }

    /// `true` for the original three kinds the batched round kernel
    /// handles; the adversary-zoo kinds need per-game context (source
    /// identity, round clock) and take the scalar path.
    #[inline]
    pub fn is_batchable(self) -> bool {
        matches!(
            self,
            NodeKind::Normal | NodeKind::ConstantlySelfish | NodeKind::RandomDropper(_)
        )
    }

    /// The fixed decision this kind makes regardless of strategy, or
    /// `None` when the decision is strategy-driven. Context-free form
    /// for the original kinds; the zoo kinds are treated as at round 0
    /// relaying for a normal source (colluders discard, on-off nodes
    /// start in their on-phase).
    pub fn fixed_decision<R: Rng + ?Sized>(self, rng: &mut R) -> Option<Decision> {
        self.fixed_decision_ctx(rng, NodeKind::Normal, 0)
    }

    /// The fixed decision this kind makes for a packet sourced by a
    /// node of kind `source` during tournament round `round`, or `None`
    /// when the decision is strategy-driven. Only
    /// [`NodeKind::RandomDropper`] draws from `rng`.
    pub fn fixed_decision_ctx<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        source: NodeKind,
        round: u32,
    ) -> Option<Decision> {
        match self {
            NodeKind::Normal => None,
            NodeKind::ConstantlySelfish => Some(Decision::Discard),
            NodeKind::RandomDropper(p) => Some(if rng.gen_bool(p) {
                Decision::Discard
            } else {
                Decision::Forward
            }),
            NodeKind::Liar => Some(Decision::Forward),
            NodeKind::Colluder(clique) => Some(match source {
                NodeKind::Colluder(c) if c == clique => Decision::Forward,
                _ => Decision::Discard,
            }),
            NodeKind::OnOff { on, off } => {
                let cycle = u32::from(on) + u32::from(off);
                let cooperating = cycle == 0 || round % cycle < u32::from(on);
                Some(if cooperating {
                    Decision::Forward
                } else {
                    Decision::Discard
                })
            }
            NodeKind::Whitewasher { .. } => Some(Decision::Discard),
            NodeKind::Flooder { .. } => Some(Decision::Discard),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::ConstantlySelfish.is_csn());
        assert!(!NodeKind::Normal.is_csn());
        assert!(NodeKind::Normal.is_normal());
        assert!(!NodeKind::RandomDropper(0.5).is_normal());
        assert!(!NodeKind::RandomDropper(0.5).is_csn());
    }

    #[test]
    fn csn_always_discards() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(
                NodeKind::ConstantlySelfish.fixed_decision(&mut rng),
                Some(Decision::Discard)
            );
        }
    }

    #[test]
    fn normal_defers_to_strategy() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(NodeKind::Normal.fixed_decision(&mut rng), None);
    }

    #[test]
    fn random_dropper_matches_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let kind = NodeKind::RandomDropper(0.25);
        let drops = (0..10_000)
            .filter(|_| kind.fixed_decision(&mut rng) == Some(Decision::Discard))
            .count();
        assert!((2_200..=2_800).contains(&drops), "drops={drops}");
    }

    #[test]
    fn zoo_kinds_are_deterministic_and_unbatchable() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for kind in [
            NodeKind::Liar,
            NodeKind::Colluder(0),
            NodeKind::OnOff { on: 2, off: 3 },
            NodeKind::Whitewasher { period: 10 },
            NodeKind::Flooder { extra: 4 },
        ] {
            assert!(!kind.is_batchable());
            assert!(!kind.is_normal());
            assert!(!kind.is_csn(), "zoo kinds are selfish slots, not CSN");
        }
        assert!(NodeKind::Normal.is_batchable());
        assert!(NodeKind::ConstantlySelfish.is_batchable());
        assert!(NodeKind::RandomDropper(0.5).is_batchable());
        // No RNG draws: the stream is unchanged after zoo decisions.
        let before = rng.clone();
        let _ = NodeKind::Liar.fixed_decision_ctx(&mut rng, NodeKind::Normal, 0);
        let _ =
            NodeKind::Whitewasher { period: 5 }.fixed_decision_ctx(&mut rng, NodeKind::Normal, 7);
        assert_eq!(rng, before);
    }

    #[test]
    fn liar_forwards_and_colluder_plays_favorites() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(
            NodeKind::Liar.fixed_decision_ctx(&mut rng, NodeKind::ConstantlySelfish, 9),
            Some(Decision::Forward)
        );
        let c = NodeKind::Colluder(2);
        assert_eq!(
            c.fixed_decision_ctx(&mut rng, NodeKind::Colluder(2), 0),
            Some(Decision::Forward)
        );
        assert_eq!(
            c.fixed_decision_ctx(&mut rng, NodeKind::Colluder(1), 0),
            Some(Decision::Discard)
        );
        assert_eq!(
            c.fixed_decision_ctx(&mut rng, NodeKind::Normal, 0),
            Some(Decision::Discard)
        );
    }

    #[test]
    fn on_off_follows_its_duty_cycle() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let k = NodeKind::OnOff { on: 2, off: 3 };
        let pattern: Vec<bool> = (0..10)
            .map(|r| k.fixed_decision_ctx(&mut rng, NodeKind::Normal, r) == Some(Decision::Forward))
            .collect();
        assert_eq!(
            pattern,
            [true, true, false, false, false, true, true, false, false, false]
        );
        // Degenerate all-zero cycle cooperates rather than dividing by zero.
        assert_eq!(
            NodeKind::OnOff { on: 0, off: 0 }.fixed_decision_ctx(&mut rng, NodeKind::Normal, 3),
            Some(Decision::Forward)
        );
    }

    #[test]
    fn dropper_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(
            NodeKind::RandomDropper(0.0).fixed_decision(&mut rng),
            Some(Decision::Forward)
        );
        assert_eq!(
            NodeKind::RandomDropper(1.0).fixed_decision(&mut rng),
            Some(Decision::Discard)
        );
    }
}
