//! Node kinds (paper §4.3) and per-player state.
//!
//! The paper uses two kinds: *normal nodes* (NN) that follow an evolving
//! strategy, and *constantly selfish nodes* (CSN) that always discard and
//! never take part in selection/reproduction. The *random dropper* is an
//! extension kind (not in the paper) used by robustness tests: it drops
//! with a fixed probability irrespective of reputation.

use ahn_strategy::Decision;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The behavioral class of a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Plays its evolving 13-bit strategy (NN).
    Normal,
    /// Always discards; immune to evolution (CSN).
    ConstantlySelfish,
    /// Extension: drops each forwarding request independently with this
    /// probability, ignoring reputation entirely.
    RandomDropper(f64),
}

impl NodeKind {
    /// `true` for the paper's CSN kind.
    #[inline]
    pub fn is_csn(self) -> bool {
        matches!(self, NodeKind::ConstantlySelfish)
    }

    /// `true` for strategy-driven normal nodes.
    #[inline]
    pub fn is_normal(self) -> bool {
        matches!(self, NodeKind::Normal)
    }

    /// The fixed decision this kind makes regardless of strategy, or
    /// `None` when the decision is strategy-driven.
    pub fn fixed_decision<R: Rng + ?Sized>(self, rng: &mut R) -> Option<Decision> {
        match self {
            NodeKind::Normal => None,
            NodeKind::ConstantlySelfish => Some(Decision::Discard),
            NodeKind::RandomDropper(p) => Some(if rng.gen_bool(p) {
                Decision::Discard
            } else {
                Decision::Forward
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::ConstantlySelfish.is_csn());
        assert!(!NodeKind::Normal.is_csn());
        assert!(NodeKind::Normal.is_normal());
        assert!(!NodeKind::RandomDropper(0.5).is_normal());
        assert!(!NodeKind::RandomDropper(0.5).is_csn());
    }

    #[test]
    fn csn_always_discards() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(
                NodeKind::ConstantlySelfish.fixed_decision(&mut rng),
                Some(Decision::Discard)
            );
        }
    }

    #[test]
    fn normal_defers_to_strategy() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(NodeKind::Normal.fixed_decision(&mut rng), None);
    }

    #[test]
    fn random_dropper_matches_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let kind = NodeKind::RandomDropper(0.25);
        let drops = (0..10_000)
            .filter(|_| kind.fixed_decision(&mut rng) == Some(Decision::Discard))
            .count();
        assert!((2_200..=2_800).contains(&drops), "drops={drops}");
    }

    #[test]
    fn dropper_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(
            NodeKind::RandomDropper(0.0).fixed_decision(&mut rng),
            Some(Decision::Forward)
        );
        assert_eq!(
            NodeKind::RandomDropper(1.0).fixed_decision(&mut rng),
            Some(Decision::Discard)
        );
    }
}
