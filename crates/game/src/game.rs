//! A single Ad Hoc Network Game (paper §4.1).
//!
//! The source draws candidate paths toward a destination, selects the
//! best-reputation one (§3.1), and the chosen intermediates decide in
//! sequence. The first discard ends the game. Afterwards:
//!
//! * every intermediate that received the packet is paid per the
//!   intermediate payoff table (its trust in the *source* selects the
//!   column), the source is paid by transmission status (Fig. 2);
//! * reputation is updated per the watchdog rule (Fig. 1a);
//! * metrics and energy ledgers are updated.

use crate::arena::Arena;
use ahn_net::watchdog::{apply_route_outcome, RouteOutcome};
use ahn_net::{NodeId, PathScratch, TrustLevel};
use ahn_strategy::Decision;
use rand::Rng;

/// Reusable buffers so the hot game loop performs no steady-state
/// allocations (one `Scratch` per tournament). After [`play_game`]
/// returns, the scratch retains the last game's chosen path and decision
/// trace for inspection — tests and the trace tooling read them without
/// imposing a per-game allocation on the million-game hot loop.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    pool: Vec<NodeId>,
    paths: PathScratch,
    decisions: Vec<(Decision, TrustLevel)>,
    chosen: Vec<NodeId>,
}

impl Scratch {
    /// The relay path chosen by the most recent game.
    pub fn last_path(&self) -> &[NodeId] {
        &self.chosen
    }

    /// The decision trace of the most recent game: one entry per relay
    /// that received the packet, in path order.
    pub fn last_decisions(&self) -> &[(Decision, TrustLevel)] {
        &self.decisions
    }
}

/// What one game looked like. Deliberately `Copy`-light: the chosen path
/// stays in the [`Scratch`] (see [`Scratch::last_path`]) so the hot loop
/// never allocates per game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GameReport {
    /// Chosen destination.
    pub destination: NodeId,
    /// Number of hops of the chosen path (relays + 1).
    pub hops: usize,
    /// How the attempt ended.
    pub outcome: RouteOutcome,
}

/// The decision (and the trust level backing its payoff) `node` takes on
/// a packet originated by `source`.
///
/// Normal nodes consult their strategy: known sources are looked up by
/// (trust, activity); unknown sources use strategy bit 12 with the
/// default trust level for the payoff column (§6.1). Fixed-behavior kinds
/// (CSN, random droppers) ignore the strategy but still carry a trust
/// level so their payoff accounting stays uniform.
pub fn decide<R: Rng + ?Sized>(
    arena: &Arena,
    rng: &mut R,
    node: NodeId,
    source: NodeId,
) -> (Decision, TrustLevel) {
    // One indexed reputation access serves both the trust lookup and the
    // activity classification.
    let (rate, forwarded) = arena.reputation.rate_and_forwarded(node, source);
    let trust = arena.config.trust.level_opt(rate);
    if let Some(fixed) =
        arena
            .kind(node)
            .fixed_decision_ctx(rng, arena.kind(source), arena.round_clock())
    {
        return (fixed, trust);
    }
    let strategy = arena.strategy(node);
    let decision = match rate {
        None => strategy.unknown_decision(),
        Some(_) => {
            let activity = arena.config.activity.classify_opt(
                f64::from(forwarded),
                arena.reputation.mean_forwarded_of_known(node),
            );
            strategy.decision(trust, activity)
        }
    };
    (decision, trust)
}

/// Plays one game with `source` as originator among `participants`
/// (which must contain `source`), charging metrics to environment `env`.
///
/// Returns a [`GameReport`] describing the attempt.
///
/// # Panics
/// Panics if `participants` has fewer than three nodes (source,
/// destination and at least one potential relay are required).
pub fn play_game<R: Rng + ?Sized>(
    arena: &mut Arena,
    rng: &mut R,
    source: NodeId,
    participants: &[NodeId],
    env: usize,
    scratch: &mut Scratch,
) -> GameReport {
    assert!(
        participants.len() >= 3,
        "a game needs a source, a destination and a relay candidate"
    );

    // Step 2 of the tournament scheme: random destination, then the relay
    // pool is everyone else.
    let destination = loop {
        let d = participants[rng.gen_range(0..participants.len())];
        if d != source {
            break d;
        }
    };
    // One memcpy of the participant list, then an order-preserving
    // in-place removal of the two non-relay roles — cheaper than a
    // filtered element-by-element push.
    scratch.pool.clear();
    scratch.pool.extend_from_slice(participants);
    scratch.pool.retain(|&n| n != source && n != destination);

    // Steps 2-3: draw candidate paths into the reusable scratch, pick
    // the best-rated one. No per-game allocations at steady state.
    arena
        .config
        .paths
        .generate_into(rng, &scratch.pool, &mut scratch.paths);
    let best =
        arena
            .config
            .route_selection
            .select_from(rng, &arena.reputation, source, &scratch.paths);
    scratch.chosen.clear();
    scratch
        .chosen
        .extend_from_slice(scratch.paths.candidate(best));
    let path = &scratch.chosen;

    // Step 4: sequential decisions. Each node's choice depends only on
    // its own pre-game view of the source, so a read-only pass suffices.
    scratch.decisions.clear();
    let mut outcome = RouteOutcome::Delivered;
    for (k, &node) in path.iter().enumerate() {
        let (decision, trust) = decide(arena, rng, node, source);
        scratch.decisions.push((decision, trust));
        if decision == Decision::Discard {
            outcome = RouteOutcome::DroppedAt(k);
            break;
        }
    }

    // Step 5 + metrics, fused into one pass over the path: payoffs and
    // energy for every decider, request-level counts (Tab. 6) and the
    // CSN-free-path flag (Tab. 5) — each node's kind is loaded once.
    let delivered = outcome.delivered();
    arena.payoffs[source.index()].add_source(arena.config.payoff.source(delivered));
    arena.energy[source.index()].add_tx();
    let mut req = crate::metrics::ReqCounts::default();
    let mut csn_free = true;
    for (k, &node) in path.iter().enumerate() {
        let kind = arena.kind(node);
        csn_free &= !kind.is_csn();
        // Only the first `decisions.len()` nodes received the packet;
        // the rest still count for path composition above.
        if let Some(&(decision, trust)) = scratch.decisions.get(k) {
            match decision {
                Decision::Forward => {
                    arena.payoffs[node.index()].add_forward(arena.config.payoff.forward(trust));
                    arena.energy[node.index()].add_forward();
                    req.accepted += 1;
                }
                Decision::Discard => {
                    arena.payoffs[node.index()].add_discard(arena.config.payoff.discard(trust));
                    arena.energy[node.index()].add_discard();
                    if kind.is_normal() {
                        req.rejected_by_nn += 1;
                    } else {
                        req.rejected_by_csn += 1;
                    }
                }
            }
        }
    }
    if delivered {
        arena.energy[destination.index()].add_rx();
    }

    // Game-level metrics (Fig. 4 / Tab. 5).
    let source_normal = arena.kind(source).is_normal();
    {
        let m = arena.metrics.env_mut(env);
        if source_normal {
            m.nn_games += 1;
            if delivered {
                m.nn_delivered += 1;
            }
            if csn_free {
                m.nn_csn_free_path += 1;
            }
            m.from_nn.merge(&req);
        } else {
            m.from_csn.merge(&req);
        }
    }

    // Step 6: reputation updates per the watchdog rule.
    apply_route_outcome(&mut arena.reputation, source, &scratch.chosen, outcome);

    GameReport {
        destination,
        hops: scratch.chosen.len() + 1,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::GameConfig;
    use crate::players::NodeKind;
    use ahn_net::PathMode;
    use ahn_strategy::Strategy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn participants(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::from).collect()
    }

    fn cooperative_arena(n: usize) -> Arena {
        Arena::new(
            vec![Strategy::always_forward(); n],
            0,
            GameConfig::paper(PathMode::Shorter),
            1,
        )
    }

    #[test]
    fn all_cooperators_always_deliver() {
        let mut a = cooperative_arena(10);
        let mut r = rng(1);
        let mut s = Scratch::default();
        let ids = participants(10);
        for _ in 0..100 {
            let rep = play_game(&mut a, &mut r, NodeId(0), &ids, 0, &mut s);
            assert!(rep.outcome.delivered());
            assert_ne!(rep.destination, NodeId(0));
            assert!(!s.last_path().contains(&NodeId(0)));
            assert!(!s.last_path().contains(&rep.destination));
            assert_eq!(rep.hops, s.last_path().len() + 1);
        }
        let m = a.metrics.env(0);
        assert_eq!(m.nn_games, 100);
        assert_eq!(m.nn_delivered, 100);
        assert_eq!(m.nn_csn_free_path, 100);
        assert_eq!(m.from_nn.rejected_by_nn, 0);
        assert!(m.from_nn.accepted > 0);
        a.reputation.check_invariants().unwrap();
    }

    #[test]
    fn all_defectors_never_deliver() {
        let mut a = Arena::new(
            vec![Strategy::always_discard(); 10],
            0,
            GameConfig::paper(PathMode::Shorter),
            1,
        );
        let mut r = rng(2);
        let mut s = Scratch::default();
        let ids = participants(10);
        for _ in 0..50 {
            let rep = play_game(&mut a, &mut r, NodeId(3), &ids, 0, &mut s);
            assert!(!rep.outcome.delivered());
            assert_eq!(rep.outcome, RouteOutcome::DroppedAt(0));
        }
        let m = a.metrics.env(0);
        assert_eq!(m.nn_delivered, 0);
        assert_eq!(m.from_nn.accepted, 0);
        assert_eq!(m.from_nn.rejected_by_nn, 50);
    }

    #[test]
    fn csn_discards_are_attributed_to_csn() {
        // 3 cooperators + 7 CSN: with only CSN available as relays often,
        // drops must be recorded as rejected_by_csn.
        let mut a = Arena::new(
            vec![Strategy::always_forward(); 3],
            7,
            GameConfig::paper(PathMode::Longer),
            1,
        );
        let mut r = rng(3);
        let mut s = Scratch::default();
        let ids = participants(10);
        for _ in 0..200 {
            play_game(&mut a, &mut r, NodeId(0), &ids, 0, &mut s);
        }
        let m = a.metrics.env(0);
        assert!(m.from_nn.rejected_by_csn > 0);
        assert_eq!(m.from_nn.rejected_by_nn, 0);
        assert!(m.nn_csn_free_path < m.nn_games);
    }

    #[test]
    fn source_payoff_matches_outcome() {
        let mut a = cooperative_arena(5);
        let mut r = rng(4);
        let mut s = Scratch::default();
        let ids = participants(5);
        play_game(&mut a, &mut r, NodeId(0), &ids, 0, &mut s);
        // Delivered -> S = 5 as the single source event.
        assert_eq!(a.payoffs[0].tps, 5.0);
        assert_eq!(a.payoffs[0].ne, 1);
    }

    #[test]
    fn unknown_source_uses_bit_12() {
        // Strategy: discard for everything known, forward for unknown.
        let s: Strategy = "000 000 000 000 1".parse().unwrap();
        let mut a = Arena::new(vec![s; 5], 0, GameConfig::paper(PathMode::Shorter), 1);
        let mut r = rng(5);
        let mut scratch = Scratch::default();
        let ids = participants(5);
        // First game: everyone is unknown -> delivery must succeed.
        let rep = play_game(&mut a, &mut r, NodeId(0), &ids, 0, &mut scratch);
        assert!(rep.outcome.delivered());
    }

    #[test]
    fn known_bad_source_is_punished_by_threshold_strategy() {
        // Normal players forward only for trust >= 2; node 4 is CSN whose
        // rate collapses to 0 once observed.
        let strat = Strategy::trust_threshold(ahn_net::TrustLevel::T2, true);
        let kinds = vec![
            NodeKind::Normal,
            NodeKind::Normal,
            NodeKind::Normal,
            NodeKind::Normal,
            NodeKind::ConstantlySelfish,
        ];
        let mut a = Arena::with_kinds(
            vec![strat; 4],
            kinds,
            GameConfig::paper(PathMode::Shorter),
            1,
        );
        let mut r = rng(6);
        let mut scratch = Scratch::default();
        let ids = participants(5);
        // Let the CSN be observed dropping: normal players source games.
        for _ in 0..200 {
            for src in 0..4u32 {
                play_game(&mut a, &mut r, NodeId(src), &ids, 0, &mut scratch);
            }
        }
        // Now the CSN sources: its packets should be discarded by
        // normal players that know it.
        let before = a.metrics.env(0).from_csn;
        for _ in 0..100 {
            play_game(&mut a, &mut r, NodeId(4), &ids, 0, &mut scratch);
        }
        let after = a.metrics.env(0).from_csn;
        let rejected = after.rejected_by_nn - before.rejected_by_nn;
        let accepted = after.accepted - before.accepted;
        assert!(
            rejected > accepted,
            "CSN packets should mostly be rejected: rejected={rejected} accepted={accepted}"
        );
    }

    #[test]
    fn energy_accounting_per_role() {
        let mut a = cooperative_arena(4);
        let mut r = rng(7);
        let mut s = Scratch::default();
        let ids = participants(4);
        let rep = play_game(&mut a, &mut r, NodeId(0), &ids, 0, &mut s);
        assert_eq!(a.energy[0].tx_packets, 1, "source transmits");
        let path: Vec<NodeId> = s.last_path().to_vec();
        for &n in &path {
            assert_eq!(a.energy[n.index()].tx_packets, 1, "forwarder retransmits");
            assert_eq!(a.energy[n.index()].rx_packets, 1, "forwarder receives");
        }
        assert_eq!(a.energy[rep.destination.index()].rx_packets, 1);
    }

    #[test]
    #[should_panic(expected = "a game needs")]
    fn too_few_participants_panics() {
        let mut a = cooperative_arena(2);
        let mut r = rng(8);
        let mut s = Scratch::default();
        play_game(&mut a, &mut r, NodeId(0), &participants(2), 0, &mut s);
    }

    #[test]
    fn decide_reflects_trust_lookup() {
        let strat = Strategy::trust_threshold(ahn_net::TrustLevel::T2, false);
        let mut a = Arena::new(vec![strat; 3], 0, GameConfig::paper(PathMode::Shorter), 1);
        let mut r = rng(9);
        // Unknown source: bit 12 = 0 -> discard.
        assert_eq!(
            decide(&a, &mut r, NodeId(1), NodeId(0)).0,
            Decision::Discard
        );
        // Make node 0 a known perfect forwarder from node 1's view.
        for _ in 0..10 {
            a.reputation.record_forward(NodeId(1), NodeId(0));
        }
        let (d, t) = decide(&a, &mut r, NodeId(1), NodeId(0));
        assert_eq!(t, ahn_net::TrustLevel::T3);
        assert_eq!(d, Decision::Forward);
    }
}
