//! The mutable world one generation of games plays in.
//!
//! An [`Arena`] owns everything a generation touches: the node kinds, the
//! normal players' strategies, the shared reputation matrix, per-player
//! payoff accounts and energy ledgers, and the per-environment metrics.
//! Node ids are dense: normal players take `0..n_normal`, the
//! constantly-selfish pool follows.
//!
//! # Layout: struct of arrays, sized once
//!
//! Per-node state is stored as parallel arrays indexed by node id
//! (`kinds[i]`, `strategies[i]`, `payoffs[i]`, `energy[i]`,
//! `duty_cycle[i]`) rather than an array of node structs: the hot game
//! loop touches one dimension at a time (a decision reads kind +
//! strategy, the payoff pass writes payoffs + energy), so SoA keeps each
//! pass on contiguous memory and leaves untouched dimensions out of the
//! cache. Every buffer is sized at construction and **reused across
//! generations**: [`Arena::begin_generation`] clears in place,
//! [`Arena::set_strategies_with`] decodes a new generation into the
//! existing strategy buffer, and [`Arena::fitnesses_into`] fills a
//! caller-owned vector — so the generational loop performs no
//! steady-state allocations even at 1 000 nodes (tests/zero_alloc.rs).

use crate::metrics::Metrics;
use crate::payoff::{PayoffAccount, PayoffConfig};
use crate::players::NodeKind;
use ahn_net::energy::EnergyLedger;
use ahn_net::{
    ActivityBands, GossipConfig, NodeId, PathGenerator, PathMode, ReputationMatrix, RouteSelection,
    TrustTable,
};
use ahn_strategy::Strategy;
use serde::{Deserialize, Serialize};

/// Static rules of the game: payoffs, trust table, activity bands and the
/// path model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameConfig {
    /// Payoff tables (Fig. 2).
    pub payoff: PayoffConfig,
    /// Forwarding-rate → trust-level lookup (Fig. 1b).
    pub trust: TrustTable,
    /// Activity classification (§3.2).
    pub activity: ActivityBands,
    /// Path-length / alternate-path model (Tables 2–3).
    pub paths: PathGenerator,
    /// How the source chooses among candidate paths (paper: best-rated).
    pub route_selection: RouteSelection,
    /// Optional second-hand reputation exchange after every tournament
    /// round (extension; the paper uses first-hand observation only).
    pub gossip: Option<GossipConfig>,
}

impl GameConfig {
    /// The paper's configuration for a path mode.
    pub fn paper(mode: PathMode) -> Self {
        GameConfig {
            payoff: PayoffConfig::paper(),
            trust: TrustTable::paper(),
            activity: ActivityBands::paper(),
            paths: PathGenerator::for_mode(mode),
            route_selection: RouteSelection::BestRated,
            gossip: None,
        }
    }
}

/// World state for one generation of tournaments.
#[derive(Debug, Clone)]
pub struct Arena {
    kinds: Vec<NodeKind>,
    /// Strategies of the normal players (index = node id).
    strategies: Vec<Strategy>,
    /// Bit-parallel twin of `strategies`: player `i`'s 13-bit genome as
    /// the integer [`Strategy::encode`] produces (paper bit 0 = most
    /// significant). The batched round kernel reads decisions straight
    /// off this flat array — a shift and a mask against a 2-byte word —
    /// instead of loading the `Strategy` struct per decision. Kept in
    /// sync by every strategy-mutating method.
    strategy_masks: Vec<u16>,
    /// Shared reputation state, sized for every node (normal + selfish).
    pub reputation: ReputationMatrix,
    /// Per-node payoff accounts.
    pub payoffs: Vec<PayoffAccount>,
    /// Per-node energy ledgers (extension metric).
    pub energy: Vec<EnergyLedger>,
    /// Game rules.
    pub config: GameConfig,
    /// Per-environment experiment counters.
    pub metrics: Metrics,
    /// Per-node radio duty cycle: the probability of being awake (and
    /// therefore eligible as relay or destination) in any given round.
    /// 1.0 — the paper's model — means always listening. Lower values
    /// model the sleep behavior of §1 that motivates the activity
    /// dimension (extension X6).
    duty_cycle: Vec<f64>,
    /// Current tournament round, maintained by the tournament driver so
    /// round-phased kinds ([`NodeKind::OnOff`], [`NodeKind::Whitewasher`])
    /// can read a clock without consuming randomness. Reset each
    /// generation.
    round_clock: u32,
}

impl Arena {
    /// Builds an arena with `strategies.len()` normal players followed by
    /// `csn_count` constantly selfish nodes, tracking metrics for
    /// `n_envs` environments.
    pub fn new(
        strategies: Vec<Strategy>,
        csn_count: usize,
        config: GameConfig,
        n_envs: usize,
    ) -> Self {
        let n_normal = strategies.len();
        let total = n_normal + csn_count;
        let mut kinds = vec![NodeKind::Normal; n_normal];
        kinds.extend(std::iter::repeat_n(NodeKind::ConstantlySelfish, csn_count));
        let strategy_masks = strategies.iter().map(Strategy::encode).collect();
        Arena {
            kinds,
            strategies,
            strategy_masks,
            reputation: ReputationMatrix::new(total),
            payoffs: vec![PayoffAccount::new(); total],
            energy: vec![EnergyLedger::new(); total],
            config,
            metrics: Metrics::new(n_envs),
            duty_cycle: vec![1.0; total],
            round_clock: 0,
        }
    }

    /// Builds an arena with explicit node kinds (for extension kinds such
    /// as [`NodeKind::RandomDropper`]). `strategies` must cover every
    /// [`NodeKind::Normal`] entry — i.e. all Normal nodes must come first.
    ///
    /// # Panics
    /// Panics if a Normal node appears at an index ≥ `strategies.len()`.
    pub fn with_kinds(
        strategies: Vec<Strategy>,
        kinds: Vec<NodeKind>,
        config: GameConfig,
        n_envs: usize,
    ) -> Self {
        for (i, k) in kinds.iter().enumerate() {
            if k.is_normal() {
                assert!(
                    i < strategies.len(),
                    "normal node {i} has no strategy (strategies cover 0..{})",
                    strategies.len()
                );
            }
        }
        let total = kinds.len();
        let strategy_masks = strategies.iter().map(Strategy::encode).collect();
        Arena {
            kinds,
            strategies,
            strategy_masks,
            reputation: ReputationMatrix::new(total),
            payoffs: vec![PayoffAccount::new(); total],
            energy: vec![EnergyLedger::new(); total],
            config,
            metrics: Metrics::new(n_envs),
            duty_cycle: vec![1.0; total],
            round_clock: 0,
        }
    }

    /// Number of normal (strategy-driven) players.
    pub fn n_normal(&self) -> usize {
        self.strategies.len()
    }

    /// Total number of nodes (normal + selfish pool).
    pub fn n_total(&self) -> usize {
        self.kinds.len()
    }

    /// All node ids of normal players.
    pub fn normal_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_normal()).map(NodeId::from)
    }

    /// Node ids of the selfish pool (every non-normal node).
    pub fn selfish_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.n_normal()..self.n_total()).map(NodeId::from)
    }

    /// The kind of a node.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id.index()]
    }

    /// The strategy of a normal player.
    ///
    /// # Panics
    /// Panics if `id` is not a normal player.
    #[inline]
    pub fn strategy(&self, id: NodeId) -> &Strategy {
        &self.strategies[id.index()]
    }

    /// The encoded 13-bit genome of a normal player, paper bit `b` at
    /// integer bit `12 - b` (see [`Strategy::encode`]). The batched
    /// kernel's decision read: 2 bytes per player instead of the full
    /// `Strategy` struct.
    ///
    /// # Panics
    /// Panics if `id` is not a normal player.
    #[inline]
    pub fn strategy_mask(&self, id: NodeId) -> u16 {
        self.strategy_masks[id.index()]
    }

    /// Replaces the normal players' strategies (new generation).
    ///
    /// # Panics
    /// Panics if the count changes.
    pub fn set_strategies(&mut self, strategies: Vec<Strategy>) {
        assert_eq!(
            strategies.len(),
            self.strategies.len(),
            "population size is fixed for an arena"
        );
        self.strategies = strategies;
        self.strategy_masks.clear();
        self.strategy_masks
            .extend(self.strategies.iter().map(Strategy::encode));
    }

    /// Replaces the normal players' strategies **in place**: `decode(i)`
    /// produces player `i`'s new strategy directly into the existing SoA
    /// buffer. The allocation-free sibling of
    /// [`Arena::set_strategies`] for the generational loop (decoding a
    /// genome is a pure bit operation, so no intermediate `Vec` is
    /// needed).
    pub fn set_strategies_with(&mut self, mut decode: impl FnMut(usize) -> Strategy) {
        for (i, (slot, mask)) in self
            .strategies
            .iter_mut()
            .zip(self.strategy_masks.iter_mut())
            .enumerate()
        {
            *slot = decode(i);
            *mask = slot.encode();
        }
    }

    /// Clears everything a generation accumulates: reputation (§4.4
    /// Step 1), payoff accounts, energy ledgers, metrics and the round
    /// clock.
    pub fn begin_generation(&mut self) {
        self.reputation.clear();
        for p in &mut self.payoffs {
            p.clear();
        }
        for e in &mut self.energy {
            *e = EnergyLedger::new();
        }
        self.metrics.clear();
        self.round_clock = 0;
    }

    /// The current tournament round (see the `round_clock` field).
    #[inline]
    pub fn round_clock(&self) -> u32 {
        self.round_clock
    }

    /// Sets the round clock; called by the tournament driver at the
    /// start of each round.
    #[inline]
    pub fn set_round_clock(&mut self, round: u32) {
        self.round_clock = round;
    }

    /// `true` when every node is one of the three kinds the batched
    /// round kernel decodes ([`NodeKind::is_batchable`]); adversary-zoo
    /// kinds force the scalar per-game path, whose sequential reputation
    /// reads give them the context they need.
    pub fn all_kinds_batchable(&self) -> bool {
        self.kinds.iter().all(|k| k.is_batchable())
    }

    /// The duty cycle of a node (probability of being awake per round).
    #[inline]
    pub fn duty_cycle(&self, id: NodeId) -> f64 {
        self.duty_cycle[id.index()]
    }

    /// Sets a node's duty cycle.
    ///
    /// # Panics
    /// Panics unless `0 < duty <= 1` (a node that never wakes cannot even
    /// send its own packets).
    pub fn set_duty_cycle(&mut self, id: NodeId, duty: f64) {
        assert!(
            duty > 0.0 && duty <= 1.0,
            "duty cycle {duty} outside (0, 1]"
        );
        self.duty_cycle[id.index()] = duty;
    }

    /// `true` when any node sleeps (duty < 1), i.e. the tournament must
    /// sample awake sets per round.
    pub fn has_sleepers(&self) -> bool {
        self.duty_cycle.iter().any(|&d| d < 1.0)
    }

    /// Fitness (eq. 1) of every normal player, in id order — the GA's
    /// evaluation vector.
    pub fn fitnesses(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.fitnesses_into(&mut out);
        out
    }

    /// Writes every normal player's fitness into `out` (cleared first),
    /// reusing its capacity — the allocation-free sibling of
    /// [`Arena::fitnesses`] for the generational loop.
    pub fn fitnesses_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.n_normal()).map(|i| self.payoffs[i].fitness()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn arena(n_normal: usize, csn: usize) -> Arena {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let strategies = (0..n_normal).map(|_| Strategy::random(&mut rng)).collect();
        Arena::new(strategies, csn, GameConfig::paper(PathMode::Shorter), 1)
    }

    #[test]
    fn layout_normal_then_selfish() {
        let a = arena(5, 3);
        assert_eq!(a.n_normal(), 5);
        assert_eq!(a.n_total(), 8);
        assert!(a.kind(NodeId(0)).is_normal());
        assert!(a.kind(NodeId(4)).is_normal());
        assert!(a.kind(NodeId(5)).is_csn());
        assert!(a.kind(NodeId(7)).is_csn());
        assert_eq!(a.normal_ids().count(), 5);
        assert_eq!(
            a.selfish_ids().collect::<Vec<_>>(),
            vec![NodeId(5), NodeId(6), NodeId(7)]
        );
        assert_eq!(a.reputation.len(), 8);
    }

    #[test]
    fn begin_generation_resets_accumulators() {
        let mut a = arena(3, 1);
        a.payoffs[0].add_source(5.0);
        a.reputation.record_forward(NodeId(0), NodeId(1));
        a.energy[2].add_tx();
        a.metrics.env_mut(0).nn_games = 7;
        a.begin_generation();
        assert_eq!(a.payoffs[0].fitness(), 0.0);
        assert!(!a.reputation.knows(NodeId(0), NodeId(1)));
        assert_eq!(a.energy[2].tx_packets, 0);
        assert_eq!(a.metrics.env(0).nn_games, 0);
    }

    #[test]
    fn fitnesses_cover_only_normal_players() {
        let mut a = arena(2, 2);
        a.payoffs[0].add_source(5.0);
        a.payoffs[2].add_discard(3.0); // CSN payoffs are ignored
        let f = a.fitnesses();
        assert_eq!(f.len(), 2);
        assert_eq!(f[0], 5.0);
        assert_eq!(f[1], 0.0);
    }

    #[test]
    fn set_strategies_swaps_generation() {
        let mut a = arena(2, 0);
        let new = vec![Strategy::always_forward(), Strategy::always_discard()];
        a.set_strategies(new.clone());
        assert_eq!(a.strategy(NodeId(0)), &new[0]);
        assert_eq!(a.strategy(NodeId(1)), &new[1]);
    }

    #[test]
    #[should_panic(expected = "population size is fixed")]
    fn set_strategies_rejects_resize() {
        let mut a = arena(2, 0);
        a.set_strategies(vec![Strategy::always_forward()]);
    }

    #[test]
    fn with_kinds_allows_droppers() {
        let strategies = vec![Strategy::always_forward()];
        let kinds = vec![
            NodeKind::Normal,
            NodeKind::RandomDropper(0.3),
            NodeKind::ConstantlySelfish,
        ];
        let a = Arena::with_kinds(strategies, kinds, GameConfig::paper(PathMode::Longer), 2);
        assert_eq!(a.n_normal(), 1);
        assert_eq!(a.n_total(), 3);
        assert_eq!(a.metrics.n_envs(), 2);
    }

    #[test]
    fn duty_cycles_default_to_always_awake() {
        let mut a = arena(3, 1);
        assert!(!a.has_sleepers());
        assert_eq!(a.duty_cycle(NodeId(2)), 1.0);
        a.set_duty_cycle(NodeId(2), 0.25);
        assert!(a.has_sleepers());
        assert_eq!(a.duty_cycle(NodeId(2)), 0.25);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_duty_cycle_is_rejected() {
        let mut a = arena(2, 0);
        a.set_duty_cycle(NodeId(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "has no strategy")]
    fn with_kinds_rejects_uncovered_normals() {
        let kinds = vec![NodeKind::ConstantlySelfish, NodeKind::Normal];
        let _ = Arena::with_kinds(vec![], kinds, GameConfig::paper(PathMode::Shorter), 1);
    }
}
