//! The tournament scheme (paper §4.4).
//!
//! A tournament is `R` rounds over a fixed participant set; in every
//! round each participant sources exactly one packet (plays "its own
//! game") and serves as relay in the others' games as drawn by the path
//! model.

use crate::arena::Arena;
use crate::batch::{self, BatchScratch};
use crate::game::{play_game, Scratch};
use crate::players::NodeKind;
use ahn_net::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Wall-clock seconds one tournament round represents in the energy
/// ledgers (idle listening for awake nodes, sleep for the rest).
pub const ROUND_SECONDS: f64 = 1.0;

/// Tournament parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tournament {
    /// Number of rounds `R` (the paper uses 300).
    pub rounds: usize,
}

/// Reusable tournament buffers (the per-game [`Scratch`] plus the
/// per-round awake set), so back-to-back tournaments — the evaluation
/// schedule runs several per generation — share one set of allocations
/// sized at the first tournament's high-water mark.
#[derive(Debug, Default, Clone)]
pub struct RoundScratch {
    /// Per-game path/decision buffers (scalar fallback and sleeper path).
    pub game: Scratch,
    /// Fixed-size state of the batched round kernel.
    batch: BatchScratch,
    /// This round's awake participants (extension X6; unused while every
    /// duty cycle is 1.0).
    awake: Vec<NodeId>,
    /// Normal participants — the slander targets of liar tellers.
    /// Filled once per tournament; empty unless zoo kinds are present.
    zoo_victims: Vec<NodeId>,
    /// Per-teller vouching targets (fellow liars or clique-mates),
    /// rebuilt per gossip exchange; empty unless zoo kinds are present.
    zoo_allies: Vec<NodeId>,
}

impl Tournament {
    /// Creates a tournament of `rounds` rounds.
    pub fn new(rounds: usize) -> Self {
        assert!(rounds > 0, "a tournament needs at least one round");
        Tournament { rounds }
    }

    /// Runs the tournament among `participants`, charging metrics to
    /// environment `env`. Every participant sources exactly
    /// [`Tournament::rounds`] packets.
    ///
    /// # Panics
    /// Panics if fewer than three participants are supplied.
    pub fn run<R: Rng + ?Sized>(
        &self,
        arena: &mut Arena,
        rng: &mut R,
        participants: &[NodeId],
        env: usize,
    ) {
        self.run_with_scratch(arena, rng, participants, env, &mut RoundScratch::default());
    }

    /// [`Tournament::run`] with caller-owned buffers — draw-identical,
    /// allocation-free once the scratch is warm.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        arena: &mut Arena,
        rng: &mut R,
        participants: &[NodeId],
        env: usize,
        round_scratch: &mut RoundScratch,
    ) {
        assert!(
            participants.len() >= 3,
            "a tournament needs at least three participants"
        );
        let RoundScratch {
            game: scratch,
            batch: batch_scratch,
            awake,
            zoo_victims,
            zoo_allies,
        } = round_scratch;
        awake.clear();
        let sample_sleep = arena.has_sleepers();
        // The paper's model (everyone awake every round) runs on the
        // batched kernel: draw-identical to the scalar loop below, minus
        // the per-game pool/candidate copies. The sleeper extension keeps
        // the scalar path (its awake set changes per round), as does any
        // exotic hop model the fixed-size kernel cannot hold.
        let use_batch = !sample_sleep && batch::round_supported(arena);
        // Adversary-zoo bookkeeping (DESIGN.md "Scenarios"). All of it is
        // keyed off the participant kinds, costs one scan per tournament,
        // and consumes no RNG — with none of the zoo kinds present every
        // branch below is dead and the round is exactly the paper's.
        let mut has_whitewashers = false;
        let mut has_flooders = false;
        let mut has_liars = false;
        zoo_victims.clear();
        for &p in participants {
            match arena.kind(p) {
                NodeKind::Whitewasher { .. } => has_whitewashers = true,
                NodeKind::Flooder { .. } => has_flooders = true,
                NodeKind::Liar => has_liars = true,
                _ => {}
            }
        }
        if has_liars {
            zoo_victims.extend(
                participants
                    .iter()
                    .copied()
                    .filter(|&p| arena.kind(p).is_normal()),
            );
        }
        for _round in 0..self.rounds {
            // Round-phased kinds read this clock instead of consuming RNG.
            arena.set_round_clock(_round as u32);
            if has_whitewashers && _round > 0 {
                // A whitewasher re-enters under a fresh identity every
                // `period` rounds: everyone forgets everything about it.
                for &p in participants {
                    if let NodeKind::Whitewasher { period } = arena.kind(p) {
                        if period > 0 && _round % usize::from(period) == 0 {
                            arena.reputation.forget_subject(p);
                        }
                    }
                }
            }
            // Sample this round's awake set (extension X6). With every
            // duty cycle at 1.0 — the paper's model — no RNG is consumed
            // and the round is exactly the paper's.
            if sample_sleep {
                awake.clear();
                for &p in participants {
                    let duty = arena.duty_cycle(p);
                    if duty >= 1.0 || rng.gen_bool(duty) {
                        awake.push(p);
                        arena.energy[p.index()].add_idle(ROUND_SECONDS);
                    } else {
                        arena.energy[p.index()].add_sleep(ROUND_SECONDS);
                    }
                }
                if awake.len() < 2 {
                    // Too few listeners to route anything this round.
                    continue;
                }
            }
            if use_batch {
                batch::play_round(arena, rng, participants, env, batch_scratch);
            } else {
                for &source in participants {
                    if !sample_sleep {
                        play_game(arena, rng, source, participants, env, scratch);
                        continue;
                    }
                    // A sleeping node still wakes to send its own packet
                    // (sleep saves listening energy, not transmission), so
                    // the eligible set for its game is the awake set plus
                    // itself.
                    let was_awake = awake.contains(&source);
                    if !was_awake {
                        awake.push(source);
                    }
                    if awake.len() >= 3 {
                        play_game(arena, rng, source, awake, env, scratch);
                    }
                    if !was_awake {
                        awake.pop();
                    }
                }
            }
            if has_flooders {
                // Energy-exhaustion attackers source `extra` additional
                // packets per round beyond the one every participant sends.
                for &source in participants {
                    if let NodeKind::Flooder { extra } = arena.kind(source) {
                        for _ in 0..extra {
                            if !sample_sleep {
                                play_game(arena, rng, source, participants, env, scratch);
                                continue;
                            }
                            let was_awake = awake.contains(&source);
                            if !was_awake {
                                awake.push(source);
                            }
                            if awake.len() >= 3 {
                                play_game(arena, rng, source, awake, env, scratch);
                            }
                            if !was_awake {
                                awake.pop();
                            }
                        }
                    }
                }
            }
            if let Some(gossip) = arena.config.gossip {
                // Each participant hears from one random other participant
                // per round (extension; see ahn_net::gossip). Sleeping
                // nodes neither tell nor listen.
                let pool: &[NodeId] = if sample_sleep { awake } else { participants };
                if pool.len() < 2 {
                    continue;
                }
                for &listener in pool {
                    let teller = loop {
                        let t = pool[rng.gen_range(0..pool.len())];
                        if t != listener {
                            break t;
                        }
                    };
                    // The teller's kind decides what actually travels.
                    // Teller selection above is the only RNG this phase
                    // consumes, so arenas without zoo kinds gossip exactly
                    // as before.
                    match arena.kind(teller) {
                        NodeKind::Liar => {
                            // Slander the honest majority, vouch for the
                            // fellow liars — the poisoning attack CORE's
                            // positive-only policy was designed to blunt.
                            ahn_net::gossip::poison_observations(
                                &mut arena.reputation,
                                teller,
                                listener,
                                zoo_victims,
                                &gossip,
                            );
                            zoo_allies.clear();
                            zoo_allies.extend(
                                pool.iter()
                                    .copied()
                                    .filter(|&p| arena.kind(p) == NodeKind::Liar),
                            );
                            ahn_net::gossip::vouch_observations(
                                &mut arena.reputation,
                                teller,
                                listener,
                                zoo_allies,
                                &gossip,
                            );
                        }
                        NodeKind::Colluder(clique) => {
                            // Honest first-hand share plus fabricated
                            // vouching for clique-mates.
                            ahn_net::gossip::share_observations(
                                &mut arena.reputation,
                                teller,
                                listener,
                                &gossip,
                            );
                            zoo_allies.clear();
                            zoo_allies.extend(
                                pool.iter()
                                    .copied()
                                    .filter(|&p| arena.kind(p) == NodeKind::Colluder(clique)),
                            );
                            ahn_net::gossip::vouch_observations(
                                &mut arena.reputation,
                                teller,
                                listener,
                                zoo_allies,
                                &gossip,
                            );
                        }
                        _ => {
                            ahn_net::gossip::share_observations(
                                &mut arena.reputation,
                                teller,
                                listener,
                                &gossip,
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::GameConfig;
    use ahn_net::PathMode;
    use ahn_strategy::Strategy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn every_participant_sources_r_games() {
        let mut a = Arena::new(
            vec![Strategy::always_forward(); 6],
            0,
            GameConfig::paper(PathMode::Shorter),
            1,
        );
        let ids: Vec<NodeId> = (0u32..6).map(NodeId::from).collect();
        Tournament::new(25).run(&mut a, &mut rng(0), &ids, 0);
        // 6 participants x 25 rounds, all normal sources.
        assert_eq!(a.metrics.env(0).nn_games, 150);
        // Every player has exactly 25 source events (tps counts S=5 each,
        // all delivered in a cooperative arena).
        for i in 0..6 {
            assert_eq!(a.payoffs[i].tps, 125.0, "player {i}");
        }
    }

    #[test]
    fn csn_participants_source_too_but_do_not_count_as_nn_games() {
        let mut a = Arena::new(
            vec![Strategy::always_forward(); 4],
            2,
            GameConfig::paper(PathMode::Shorter),
            1,
        );
        let ids: Vec<NodeId> = (0u32..6).map(NodeId::from).collect();
        Tournament::new(10).run(&mut a, &mut rng(1), &ids, 0);
        let m = a.metrics.env(0);
        // Only the 4 normal players' games count toward cooperation.
        assert_eq!(m.nn_games, 40);
        // CSN games produced request events from CSN sources.
        assert!(m.from_csn.total() > 0);
        // CSN sourced packets and accrued source events.
        assert!(a.payoffs[4].ne >= 10);
    }

    #[test]
    fn subsets_of_the_arena_can_play() {
        // 8 nodes exist but only 5 participate; non-participants must be
        // untouched.
        let mut a = Arena::new(
            vec![Strategy::always_forward(); 8],
            0,
            GameConfig::paper(PathMode::Shorter),
            1,
        );
        let ids: Vec<NodeId> = (0u32..5).map(NodeId::from).collect();
        Tournament::new(5).run(&mut a, &mut rng(2), &ids, 0);
        for i in 5..8 {
            assert_eq!(a.payoffs[i].ne, 0, "non-participant {i} was touched");
            assert_eq!(a.reputation.known_count(NodeId::from(i)), 0);
        }
    }

    #[test]
    fn determinism_under_seed() {
        let build = |seed| {
            let mut a = Arena::new(
                vec![Strategy::always_forward(); 6],
                1,
                GameConfig::paper(PathMode::Longer),
                1,
            );
            let ids: Vec<NodeId> = (0u32..7).map(NodeId::from).collect();
            Tournament::new(20).run(&mut a, &mut rng(seed), &ids, 0);
            (a.fitnesses(), *a.metrics.env(0))
        };
        assert_eq!(build(42), build(42));
        assert_ne!(build(42).1.nn_delivered, 0);
    }

    #[test]
    fn sleepers_save_listening_energy_and_relay_less() {
        let mut a = Arena::new(
            vec![Strategy::always_forward(); 8],
            0,
            GameConfig::paper(PathMode::Shorter),
            1,
        );
        // Node 7 sleeps 70% of rounds.
        a.set_duty_cycle(NodeId(7), 0.3);
        let ids: Vec<NodeId> = (0u32..8).map(NodeId::from).collect();
        Tournament::new(100).run(&mut a, &mut rng(5), &ids, 0);
        // The sleeper accumulated sleep time; the others only idle time.
        assert!(a.energy[7].sleep_s > 0.0);
        assert!(a.energy[7].idle_s < 100.0 * ROUND_SECONDS);
        assert_eq!(a.energy[0].sleep_s, 0.0);
        // It still sourced packets every round it could (>= awake rounds)
        // but relayed far less than an always-on peer.
        let sleeper_forwards = a.energy[7].rx_packets;
        let active_forwards = a.energy[0].rx_packets;
        assert!(
            sleeper_forwards * 2 < active_forwards,
            "sleeper relayed {sleeper_forwards}, active {active_forwards}"
        );
        // Everyone still sourced every round (the sleeper wakes to send).
        assert_eq!(a.metrics.env(0).nn_games, 800);
    }

    #[test]
    fn all_awake_matches_paper_model_exactly() {
        // With all duty cycles at 1.0 the sleep machinery must not
        // consume RNG: results equal the pre-extension behavior.
        let run = |set_duty: bool| {
            let mut a = Arena::new(
                vec![Strategy::always_forward(); 6],
                1,
                GameConfig::paper(PathMode::Longer),
                1,
            );
            if set_duty {
                // Setting a duty cycle of exactly 1.0 is a no-op.
                a.set_duty_cycle(NodeId(0), 1.0);
            }
            let ids: Vec<NodeId> = (0u32..7).map(NodeId::from).collect();
            Tournament::new(20).run(&mut a, &mut rng(42), &ids, 0);
            (a.fitnesses(), *a.metrics.env(0))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn gossip_spreads_reputation_beyond_witnesses() {
        use ahn_net::GossipConfig;
        // Without gossip only game participants learn; with CONFIDANT
        // gossip, knowledge spreads to many more observer pairs.
        let known_pairs = |gossip: Option<GossipConfig>| {
            let mut config = GameConfig::paper(PathMode::Shorter);
            config.gossip = gossip;
            let mut a = Arena::new(vec![Strategy::always_forward(); 10], 0, config, 1);
            let ids: Vec<NodeId> = (0u32..10).map(NodeId::from).collect();
            Tournament::new(3).run(&mut a, &mut rng(7), &ids, 0);
            let mut pairs = 0;
            for o in 0..10u32 {
                pairs += a.reputation.known_count(NodeId(o));
            }
            pairs
        };
        let without = known_pairs(None);
        let with = known_pairs(Some(GossipConfig::confidant_style()));
        assert!(
            with > without,
            "gossip should spread knowledge: {with} vs {without}"
        );
    }

    /// Arena of `n` cooperative normals followed by the given zoo tail.
    fn zoo_arena(n: usize, tail: Vec<NodeKind>, gossip: Option<ahn_net::GossipConfig>) -> Arena {
        let mut kinds = vec![NodeKind::Normal; n];
        kinds.extend(tail);
        let mut config = GameConfig::paper(PathMode::Shorter);
        config.gossip = gossip;
        Arena::with_kinds(vec![Strategy::always_forward(); n], kinds, config, 1)
    }

    #[test]
    fn whitewasher_keeps_getting_forgotten() {
        let mut a = zoo_arena(7, vec![NodeKind::Whitewasher { period: 5 }], None);
        let ww = NodeId(7);
        let ids: Vec<NodeId> = (0u32..8).map(NodeId::from).collect();
        // Rounds 5, 10, ... wipe the whitewasher's history, so after a
        // multiple-of-period round count nobody may hold more than the
        // current period's observations, despite it discarding constantly.
        Tournament::new(100).run(&mut a, &mut rng(11), &ids, 0);
        let whitewashed: usize = (0..7)
            .map(|o| a.reputation.record(NodeId(o), ww).requests as usize)
            .sum();
        let mut b = zoo_arena(7, vec![NodeKind::ConstantlySelfish], None);
        Tournament::new(100).run(&mut b, &mut rng(11), &ids, 0);
        let remembered: usize = (0..7)
            .map(|o| b.reputation.record(NodeId(o), ww).requests as usize)
            .sum();
        assert!(
            whitewashed * 4 < remembered,
            "whitewashing should erase most history: {whitewashed} vs {remembered}"
        );
        a.reputation.check_invariants().unwrap();
    }

    #[test]
    fn flooder_burns_more_relay_energy_than_a_csn() {
        let run = |tail: NodeKind| {
            let mut a = zoo_arena(7, vec![tail], None);
            let ids: Vec<NodeId> = (0u32..8).map(NodeId::from).collect();
            Tournament::new(50).run(&mut a, &mut rng(12), &ids, 0);
            // Total packets received by the honest majority — the relay
            // load the attacker imposes.
            (0..7).map(|i| a.energy[i].rx_packets as u64).sum::<u64>()
        };
        let against_csn = run(NodeKind::ConstantlySelfish);
        let against_flooder = run(NodeKind::Flooder { extra: 4 });
        assert!(
            against_flooder > against_csn,
            "flooding must raise relay load: {against_flooder} vs {against_csn}"
        );
    }

    #[test]
    fn liars_poison_reputation_under_confidant_gossip() {
        let mut a = zoo_arena(
            8,
            vec![NodeKind::Liar, NodeKind::Liar],
            Some(ahn_net::GossipConfig::confidant_style()),
        );
        let ids: Vec<NodeId> = (0u32..10).map(NodeId::from).collect();
        Tournament::new(30).run(&mut a, &mut rng(13), &ids, 0);
        // Liars forward faithfully, so their first-hand record is clean;
        // the damage shows in what listeners now believe about honest
        // nodes: cooperative forwarders held below a perfect rate.
        let mut slandered = 0;
        for o in 0..8u32 {
            for s in 0..8u32 {
                if o == s {
                    continue;
                }
                if let Some(rate) = a.reputation.rate(NodeId(o), NodeId(s)) {
                    if rate < 0.9 {
                        slandered += 1;
                    }
                }
            }
        }
        assert!(
            slandered > 0,
            "confidant-style gossip should let slander through"
        );
        a.reputation.check_invariants().unwrap();
    }

    #[test]
    fn core_gossip_blunts_poison_but_not_vouching() {
        // Under CORE's positive-only policy the same liar population
        // still vouches (positive fabrications travel) but the fabricated
        // denunciations cannot be *shared onward* by honest nodes; direct
        // poison injections still land, so compare against CONFIDANT.
        let slander_volume = |gossip: ahn_net::GossipConfig| {
            let mut a = zoo_arena(8, vec![NodeKind::Liar, NodeKind::Liar], Some(gossip));
            let ids: Vec<NodeId> = (0u32..10).map(NodeId::from).collect();
            Tournament::new(30).run(&mut a, &mut rng(14), &ids, 0);
            let mut v = 0u64;
            for o in 0..8u32 {
                for s in 0..8u32 {
                    if o != s {
                        let r = a.reputation.record(NodeId(o), NodeId(s));
                        v += u64::from(r.requests - r.forwarded);
                    }
                }
            }
            v
        };
        let core = slander_volume(ahn_net::GossipConfig::core_style());
        let confidant = slander_volume(ahn_net::GossipConfig::confidant_style());
        assert!(
            core <= confidant,
            "positive-only gossip must not amplify slander: {core} vs {confidant}"
        );
    }

    #[test]
    fn colluders_cover_for_each_other_in_gossip() {
        let mut a = zoo_arena(
            8,
            vec![NodeKind::Colluder(1), NodeKind::Colluder(1)],
            Some(ahn_net::GossipConfig::core_style()),
        );
        let ids: Vec<NodeId> = (0u32..10).map(NodeId::from).collect();
        Tournament::new(30).run(&mut a, &mut rng(15), &ids, 0);
        // Colluders discard for everyone outside the clique, yet their
        // mutual vouching pumps fabricated forwards into honest tables:
        // somebody must now over-rate a colluder relative to its watchdog
        // record alone (which would be pure drops from normal sources).
        let mut inflated = 0;
        for o in 0..8u32 {
            for c in [NodeId(8), NodeId(9)] {
                if let Some(rate) = a.reputation.rate(NodeId(o), c) {
                    if rate > 0.0 {
                        inflated += 1;
                    }
                }
            }
        }
        assert!(inflated > 0, "vouching should inflate colluder ratings");
        a.reputation.check_invariants().unwrap();
    }

    #[test]
    fn zoo_tail_forces_the_scalar_path_but_base_streams_are_unchanged() {
        // An arena with only the original kinds batches; adding any zoo
        // kind de-batches it.
        let base = zoo_arena(6, vec![NodeKind::ConstantlySelfish], None);
        assert!(crate::batch::round_supported(&base));
        for tail in [
            NodeKind::Liar,
            NodeKind::Colluder(0),
            NodeKind::OnOff { on: 1, off: 1 },
            NodeKind::Whitewasher { period: 3 },
            NodeKind::Flooder { extra: 1 },
        ] {
            let a = zoo_arena(6, vec![tail], None);
            assert!(!crate::batch::round_supported(&a), "{tail:?}");
        }
    }

    #[test]
    fn on_off_attacker_alternates_between_saint_and_sinner() {
        let mut a = zoo_arena(7, vec![NodeKind::OnOff { on: 10, off: 10 }], None);
        let ids: Vec<NodeId> = (0u32..8).map(NodeId::from).collect();
        Tournament::new(20).run(&mut a, &mut rng(16), &ids, 0);
        // Over one full on/off cycle the attacker both forwarded and
        // dropped packets — unlike a CSN (drops only) or a cooperator.
        let onoff = NodeId(7);
        let mut forwards = 0u64;
        let mut drops = 0u64;
        for o in 0..7u32 {
            let r = a.reputation.record(NodeId(o), onoff);
            forwards += u64::from(r.forwarded);
            drops += u64::from(r.requests - r.forwarded);
        }
        assert!(forwards > 0, "on-phase must forward");
        assert!(drops > 0, "off-phase must drop");
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let _ = Tournament::new(0);
    }

    #[test]
    #[should_panic(expected = "at least three participants")]
    fn tiny_tournament_panics() {
        let mut a = Arena::new(
            vec![Strategy::always_forward(); 2],
            0,
            GameConfig::paper(PathMode::Shorter),
            1,
        );
        Tournament::new(1).run(&mut a, &mut rng(3), &[NodeId(0), NodeId(1)], 0);
    }
}
