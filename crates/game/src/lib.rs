//! The Ad Hoc Network Game (paper §4).
//!
//! One node originates a packet; the randomly drawn intermediate nodes
//! decide in sequence whether to forward or discard it. Participants are
//! the source plus the intermediates (the destination takes no decision).
//! After the game every participant that received the packet is paid
//! according to the payoff tables of Fig. 2, and reputation is updated
//! per the watchdog rule of Fig. 1a.
//!
//! Module map:
//!
//! * [`payoff`] — the source / intermediate payoff tables and the payoff
//!   accounts behind the fitness function (eq. 1);
//! * [`players`] — node kinds (normal, constantly selfish, plus the
//!   random-dropper extension) and per-player state;
//! * [`metrics`] — the per-environment counters behind Fig. 4 and
//!   Tables 5–6;
//! * [`arena`] — the mutable world state one generation plays in;
//! * [`game`] — a single Ad Hoc Network Game (§4.1);
//! * [`batch`] — the batched round kernel: a whole tournament round
//!   evaluated as one draw-identical batch;
//! * [`tournament`] — the R-round tournament scheme (§4.4);
//! * [`environment`] — tournament environments TE1–TE4 (Tab. 1) and the
//!   multi-environment evaluation schedule (§4.4, Fig. 3).

#![deny(missing_docs)]

pub mod arena;
pub mod batch;
pub mod environment;
pub mod game;
pub mod metrics;
pub mod payoff;
pub mod players;
pub mod tournament;

pub use arena::{Arena, GameConfig};
pub use batch::{play_round, BatchScratch};
pub use environment::{EnvironmentSpec, EvaluationSchedule, ScheduleScratch};
pub use game::play_game;
pub use metrics::{EnvMetrics, Metrics, ReqCounts};
pub use payoff::{enumerate_reconstructions, PayoffAccount, PayoffConfig, GARBLED_READINGS};
pub use players::NodeKind;
pub use tournament::{RoundScratch, Tournament};
