//! Experiment counters (paper §6.2, Fig. 4, Tables 5–6).
//!
//! * **Cooperation level** — "percentage of packets that originated by
//!   normal nodes and then successfully reached the destination";
//! * **CSN-free paths** — the share of chosen paths containing no CSN
//!   (Tab. 5, last columns);
//! * **Forwarding-request responses** — how requests from normal nodes
//!   and from CSN were treated: accepted, rejected by a normal player, or
//!   rejected by a CSN (Tab. 6).
//!
//! Counters are kept per tournament environment so Table 5's
//! per-environment breakdown falls out directly; whole-generation numbers
//! (Fig. 4) are the merge over environments.

use serde::{Deserialize, Serialize};

/// Responses to forwarding requests originating from one kind of source
/// (one side of Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReqCounts {
    /// Request accepted (packet forwarded) — by any kind of decider.
    pub accepted: u64,
    /// Request rejected by a normal player.
    pub rejected_by_nn: u64,
    /// Request rejected by a CSN (or other non-normal kind).
    pub rejected_by_csn: u64,
}

impl ReqCounts {
    /// Total decision events recorded.
    pub fn total(&self) -> u64 {
        self.accepted + self.rejected_by_nn + self.rejected_by_csn
    }

    /// Fractions `(accepted, rejected_by_nn, rejected_by_csn)`; zeros when
    /// empty.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (
            self.accepted as f64 / t,
            self.rejected_by_nn as f64 / t,
            self.rejected_by_csn as f64 / t,
        )
    }

    /// Merges another counter set.
    pub fn merge(&mut self, other: &ReqCounts) {
        self.accepted += other.accepted;
        self.rejected_by_nn += other.rejected_by_nn;
        self.rejected_by_csn += other.rejected_by_csn;
    }
}

/// Counters for one tournament environment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvMetrics {
    /// Games whose source was a normal node.
    pub nn_games: u64,
    /// Of those, games whose packet reached the destination.
    pub nn_delivered: u64,
    /// Of those, games whose *chosen* path contained no CSN.
    pub nn_csn_free_path: u64,
    /// Responses to requests from normal sources.
    pub from_nn: ReqCounts,
    /// Responses to requests from CSN sources.
    pub from_csn: ReqCounts,
}

impl EnvMetrics {
    /// The cooperation level (Fig. 4 / Tab. 5): delivered / originated,
    /// for normal sources. 0 when no games were played.
    pub fn cooperation_level(&self) -> f64 {
        if self.nn_games == 0 {
            0.0
        } else {
            self.nn_delivered as f64 / self.nn_games as f64
        }
    }

    /// Share of chosen paths free of CSN (Tab. 5, last columns).
    pub fn csn_free_share(&self) -> f64 {
        if self.nn_games == 0 {
            0.0
        } else {
            self.nn_csn_free_path as f64 / self.nn_games as f64
        }
    }

    /// Merges another environment's counters (used for whole-generation
    /// aggregates).
    pub fn merge(&mut self, other: &EnvMetrics) {
        self.nn_games += other.nn_games;
        self.nn_delivered += other.nn_delivered;
        self.nn_csn_free_path += other.nn_csn_free_path;
        self.from_nn.merge(&other.from_nn);
        self.from_csn.merge(&other.from_csn);
    }
}

/// All counters of one generation, split per tournament environment.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    envs: Vec<EnvMetrics>,
}

impl Metrics {
    /// Creates counters for `n_envs` environments.
    pub fn new(n_envs: usize) -> Self {
        Metrics {
            envs: vec![EnvMetrics::default(); n_envs],
        }
    }

    /// Number of environments tracked.
    pub fn n_envs(&self) -> usize {
        self.envs.len()
    }

    /// Mutable counters for environment `env`.
    ///
    /// # Panics
    /// Panics if `env` is out of range.
    pub fn env_mut(&mut self, env: usize) -> &mut EnvMetrics {
        &mut self.envs[env]
    }

    /// Counters for environment `env`.
    pub fn env(&self, env: usize) -> &EnvMetrics {
        &self.envs[env]
    }

    /// Whole-generation aggregate over every environment.
    pub fn total(&self) -> EnvMetrics {
        let mut t = EnvMetrics::default();
        for e in &self.envs {
            t.merge(e);
        }
        t
    }

    /// Resets all counters (start of a generation).
    pub fn clear(&mut self) {
        self.envs.fill(EnvMetrics::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooperation_level_definition() {
        let e = EnvMetrics {
            nn_games: 100,
            nn_delivered: 97,
            ..EnvMetrics::default()
        };
        assert!((e.cooperation_level() - 0.97).abs() < 1e-12);
        assert_eq!(EnvMetrics::default().cooperation_level(), 0.0);
    }

    #[test]
    fn csn_free_share() {
        let e = EnvMetrics {
            nn_games: 50,
            nn_csn_free_path: 10,
            ..EnvMetrics::default()
        };
        assert!((e.csn_free_share() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn req_fractions_sum_to_one() {
        let r = ReqCounts {
            accepted: 77,
            rejected_by_nn: 1,
            rejected_by_csn: 22,
        };
        let (a, n, c) = r.fractions();
        assert!((a + n + c - 1.0).abs() < 1e-12);
        assert!((a - 0.77).abs() < 1e-12);
        assert_eq!(ReqCounts::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn metrics_total_merges_envs() {
        let mut m = Metrics::new(2);
        m.env_mut(0).nn_games = 10;
        m.env_mut(0).nn_delivered = 9;
        m.env_mut(1).nn_games = 10;
        m.env_mut(1).nn_delivered = 1;
        let t = m.total();
        assert_eq!(t.nn_games, 20);
        assert_eq!(t.nn_delivered, 10);
        assert!((t.cooperation_level() - 0.5).abs() < 1e-12);
        // Per-env views stay split (Table 5).
        assert!((m.env(0).cooperation_level() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn clear_zeroes_but_keeps_env_count() {
        let mut m = Metrics::new(3);
        m.env_mut(2).nn_games = 5;
        m.clear();
        assert_eq!(m.n_envs(), 3);
        assert_eq!(m.env(2).nn_games, 0);
    }

    #[test]
    fn merge_request_counters() {
        let mut a = ReqCounts {
            accepted: 1,
            rejected_by_nn: 2,
            rejected_by_csn: 3,
        };
        a.merge(&a.clone());
        assert_eq!(a.total(), 12);
    }
}
