//! Property-based tests of the game engine: whatever the strategies,
//! seeds and environment composition, the accounting must balance.

use ahn_game::{game::Scratch, play_game, Arena, GameConfig, Tournament};
use ahn_net::{NodeId, PathMode};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An arbitrary population of 13-bit strategies.
fn strategies(n: usize) -> impl proptest::strategy::Strategy<Value = Vec<ahn_strategy::Strategy>> {
    proptest::collection::vec(0u16..(1 << 13), n).prop_map(|codes| {
        codes
            .into_iter()
            .map(ahn_strategy::Strategy::decode)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every member of the reconstruction family — at any scale —
    /// satisfies the §4.2 prose constraints and survives a serde
    /// round-trip exactly (the calibration engine and the serve
    /// protocol both rely on the round-trip being lossless).
    #[test]
    fn reconstruction_candidates_hold_constraints_and_roundtrip(
        pick in any::<u64>(),
        scale_idx in 0usize..4,
    ) {
        let family = ahn_game::enumerate_reconstructions();
        prop_assert!(family.len() >= 20, "family too small: {}", family.len());
        let table = family[(pick % family.len() as u64) as usize];
        let scale = [0.5, 1.0, 2.0, 4.0][scale_idx];
        let scaled = table.scaled_intermediate(scale);
        scaled.check_paper_constraints().unwrap();
        let json = serde_json::to_string(&scaled).unwrap();
        let back: ahn_game::PayoffConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(scaled, back);
    }

    /// After any batch of games: per-event payoff accounting balances,
    /// reputation invariants hold, and the metrics are consistent.
    #[test]
    fn arbitrary_populations_keep_the_books(
        strats in strategies(8),
        csn in 0usize..4,
        seed in any::<u64>(),
        mode in prop_oneof![Just(PathMode::Shorter), Just(PathMode::Longer)],
    ) {
        let n_normal = strats.len();
        let mut arena = Arena::new(strats, csn, GameConfig::paper(mode), 1);
        let ids: Vec<NodeId> = (0..(n_normal + csn) as u32).map(NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut scratch = Scratch::default();

        let games = 120usize;
        for i in 0..games {
            let source = ids[i % ids.len()];
            let report = play_game(&mut arena, &mut rng, source, &ids, 0, &mut scratch);
            // The report itself is sane.
            prop_assert!(!scratch.last_path().contains(&source));
            prop_assert!(!scratch.last_path().contains(&report.destination));
            prop_assert_eq!(report.hops, scratch.last_path().len() + 1);
            prop_assert_ne!(report.destination, source);
        }

        arena.reputation.check_invariants().unwrap();
        let m = arena.metrics.env(0);
        prop_assert!(m.nn_delivered <= m.nn_games);
        prop_assert!(m.nn_csn_free_path <= m.nn_games);
        prop_assert!(m.nn_games <= games as u64);

        // Every played game produced exactly one source event.
        let source_event_count: f64 = arena.payoffs.iter().map(|p| p.ne as f64).sum();
        prop_assert!(source_event_count >= games as f64, "every game pays the source");

        // Request fractions sum to 1 on any non-empty side.
        for side in [m.from_nn, m.from_csn] {
            if side.total() > 0 {
                let (a, b, c) = side.fractions();
                prop_assert!((a + b + c - 1.0).abs() < 1e-9);
            }
        }

        // Energy: transmissions never exceed receptions + sourced games
        // (every forward is rx+tx, sources tx without rx).
        for ledger in &arena.energy {
            prop_assert!(ledger.tx_packets <= ledger.rx_packets + games as u64);
        }
    }

    /// Tournament bookkeeping: every participant sources exactly R games,
    /// whatever the strategies.
    #[test]
    fn tournament_source_counts(
        strats in strategies(6),
        seed in any::<u64>(),
        rounds in 1usize..12,
    ) {
        let mut arena = Arena::new(strats, 2, GameConfig::paper(PathMode::Shorter), 1);
        let ids: Vec<NodeId> = (0..8u32).map(NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tournament::new(rounds).run(&mut arena, &mut rng, &ids, 0);

        // Each of the 8 participants sourced exactly `rounds` packets:
        // total source payoffs count = 8 * rounds, and nn_games counts
        // the 6 normal ones.
        prop_assert_eq!(arena.metrics.env(0).nn_games, 6 * rounds as u64);
        // Each node's tx count >= its source count (it always transmits
        // when sourcing).
        for i in 0..8 {
            prop_assert!(arena.energy[i].tx_packets >= rounds as u64);
        }
    }

    /// Determinism: identical seeds and populations give identical
    /// histories regardless of strategy content.
    #[test]
    fn games_are_deterministic(strats in strategies(6), seed in any::<u64>()) {
        let run = |strats: Vec<ahn_strategy::Strategy>, seed: u64| {
            let mut arena = Arena::new(strats, 1, GameConfig::paper(PathMode::Longer), 1);
            let ids: Vec<NodeId> = (0..7u32).map(NodeId).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut scratch = Scratch::default();
            for i in 0..50 {
                play_game(&mut arena, &mut rng, ids[i % 7], &ids, 0, &mut scratch);
            }
            (arena.fitnesses(), *arena.metrics.env(0))
        };
        prop_assert_eq!(run(strats.clone(), seed), run(strats, seed));
    }

    /// Fitness is always within the payoff table's hull.
    #[test]
    fn fitness_is_bounded(strats in strategies(8), seed in any::<u64>()) {
        let mut arena = Arena::new(strats, 2, GameConfig::paper(PathMode::Shorter), 1);
        let ids: Vec<NodeId> = (0..10u32).map(NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tournament::new(5).run(&mut arena, &mut rng, &ids, 0);
        // Bounds: min/max of all payoff-table entries (source 0..5,
        // forward 0..2, discard 0.5..3).
        for f in arena.fitnesses() {
            prop_assert!((0.0..=5.0).contains(&f), "fitness {f} out of hull");
        }
    }
}
