//! # ahn — Evolution of Strategy-Driven Behavior in Ad Hoc Networks
//!
//! A Rust reproduction of *Seredynski, Bouvry & Klopotek: Evolution of
//! Strategy Driven Behavior in Ad Hoc Networks Using a Genetic
//! Algorithm* (IPDPS Workshops, 2007).
//!
//! Mobile ad hoc networks rely on nodes forwarding each other's packets;
//! battery-constrained nodes are tempted to free-ride. The paper equips
//! every node with a 13-bit *strategy* deciding, per forwarding request,
//! whether to relay based on the packet source's **trust level** (derived
//! from watchdog observations) and **activity level**, and evolves these
//! strategies with a genetic algorithm inside a game-theoretic network
//! model. This crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`bitstr`] | fixed-width bit-string genomes |
//! | [`stats`] | summaries, series, histograms |
//! | [`net`] | reputation, trust, activity, watchdog, paths, energy, topology |
//! | [`strategy`] | the 13-bit strategy codec and population analysis |
//! | [`game`] | the Ad Hoc Network Game, tournaments, environments |
//! | [`ga`] | the genetic-algorithm engine |
//! | [`ipdrp`] | the IPDRP baseline (Namikawa & Ishibuchi) |
//! | [`obs`] | observability: latency histograms, trace spans, recorder hooks |
//! | [`core`] | the experiment harness reproducing every table/figure |
//! | [`serve`] | the HTTP job server (worker pool, result cache, load test) |
//!
//! ## Example
//!
//! ```
//! use ahn::core::{cases::CaseSpec, config::ExperimentConfig, experiment};
//! use ahn::net::PathMode;
//!
//! let mut cfg = ExperimentConfig::smoke();
//! cfg.generations = 15;
//! let case = CaseSpec::mini("readme", &[0], 10, PathMode::Shorter);
//! let result = experiment::run_experiment(&cfg, &case);
//! assert!(result.coop_series.len() == 15);
//! ```
//!
//! Runnable examples live in `examples/` (start with
//! `cargo run --release --example quickstart`); the `ahn-exp` binary in
//! `crates/cli` regenerates every table and figure of the paper.

#![deny(missing_docs)]

pub use ahn_bitstr as bitstr;
pub use ahn_core as core;
pub use ahn_ga as ga;
pub use ahn_game as game;
pub use ahn_ipdrp as ipdrp;
pub use ahn_net as net;
pub use ahn_obs as obs;
pub use ahn_serve as serve;
pub use ahn_stats as stats;
pub use ahn_strategy as strategy;
