//! Golden determinism snapshots of seeded replications.
//!
//! These tests pin the *exact* output of `run_replication` for a set of
//! seeded small-scale configurations. Their purpose is to prove that
//! hot-path refactors (inline genomes, precomputed samplers, cached
//! reputation rates, scratch-buffer reuse, in-place breeding) are pure
//! speedups: the RNG draw sequence, and therefore every simulated
//! decision, must stay bit-identical.
//!
//! Floating-point values are snapshotted through `format!("{:?}")`,
//! Rust's shortest-roundtrip representation, so a one-ulp drift anywhere
//! in the pipeline fails the comparison.
//!
//! To regenerate after an *intentional* behavior change (never to paper
//! over an accidental one):
//!
//! ```console
//! $ AHN_GOLDEN_REGEN=1 cargo test --test golden
//! $ git diff tests/golden_replication.json   # review every changed draw
//! ```

use ahn::core::{
    cases::CaseSpec,
    config::ExperimentConfig,
    experiment::{run_replication, ReplicationResult},
};
use ahn::net::PathMode;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_replication.json");

/// One pinned scenario: a named (config, case, seed) triple.
struct Scenario {
    name: &'static str,
    config: ExperimentConfig,
    case: CaseSpec,
    seed: u64,
}

/// The pinned scenarios. Small scale (10-participant tournaments, a few
/// generations) keeps the suite fast while exercising every hot path:
/// both path modes, CSN-free and CSN-heavy environments, and the
/// full evaluate→breed loop.
fn scenarios() -> Vec<Scenario> {
    let mut smoke = ExperimentConfig::smoke();
    smoke.generations = 6;

    let mut longer_rounds = ExperimentConfig::smoke();
    longer_rounds.generations = 4;
    longer_rounds.rounds = 40;

    vec![
        Scenario {
            name: "sp_clean_and_hostile",
            config: smoke.clone(),
            case: CaseSpec::mini("golden-sp", &[0, 3], 10, PathMode::Shorter),
            seed: 42,
        },
        Scenario {
            name: "lp_mixed",
            config: smoke,
            case: CaseSpec::mini("golden-lp", &[2], 10, PathMode::Longer),
            seed: 7,
        },
        Scenario {
            name: "sp_long_horizon",
            config: longer_rounds,
            case: CaseSpec::mini("golden-r40", &[4], 10, PathMode::Shorter),
            seed: 20260730,
        },
    ]
}

/// Renders a replication result into an exact, human-diffable snapshot.
///
/// `{:?}` on `f64` is Rust's shortest representation that round-trips,
/// so two snapshots are equal iff every float is bit-identical.
fn snapshot(r: &ReplicationResult) -> Vec<String> {
    let mut lines = Vec::new();
    for (g, c) in r.coop_by_gen.iter().enumerate() {
        lines.push(format!("coop[{g}] = {c:?}"));
    }
    for (e, m) in r.final_by_env.iter().enumerate() {
        lines.push(format!(
            "env[{e}] nn_games={} nn_delivered={} nn_csn_free={} from_nn={:?} from_csn={:?}",
            m.nn_games,
            m.nn_delivered,
            m.nn_csn_free_path,
            (
                m.from_nn.accepted,
                m.from_nn.rejected_by_nn,
                m.from_nn.rejected_by_csn
            ),
            (
                m.from_csn.accepted,
                m.from_csn.rejected_by_nn,
                m.from_csn.rejected_by_csn
            ),
        ));
    }
    for (g, s) in r.fitness_by_gen.iter().enumerate() {
        lines.push(format!(
            "fitness[{g}] best={:?} mean={:?} worst={:?}",
            s.best, s.mean, s.worst
        ));
    }
    for (i, s) in r.final_population.iter().enumerate() {
        lines.push(format!("strategy[{i}] = {s}"));
    }
    lines.push(format!(
        "energy normal={:?} selfish={:?}",
        r.energy_normal_mj, r.energy_selfish_mj
    ));
    lines
}

fn current_snapshots() -> Vec<(String, Vec<String>)> {
    scenarios()
        .iter()
        .map(|s| {
            let r = run_replication(&s.config, &s.case, s.seed);
            (s.name.to_string(), snapshot(&r))
        })
        .collect()
}

fn render(snaps: &[(String, Vec<String>)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    for (i, (name, lines)) in snaps.iter().enumerate() {
        out.push_str(&format!("  {:?}: [\n", name));
        for (j, line) in lines.iter().enumerate() {
            let comma = if j + 1 < lines.len() { "," } else { "" };
            out.push_str(&format!("    {line:?}{comma}\n"));
        }
        let comma = if i + 1 < snaps.len() { "," } else { "" };
        out.push_str(&format!("  ]{comma}\n"));
    }
    out.push_str("}\n");
    out
}

#[test]
fn seeded_replications_match_golden_snapshots() {
    let snaps = current_snapshots();
    let rendered = render(&snaps);

    if std::env::var_os("AHN_GOLDEN_REGEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }

    let expected = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden file missing — run `AHN_GOLDEN_REGEN=1 cargo test --test golden` \
         on a known-good tree and commit tests/golden_replication.json",
    );
    if expected == rendered {
        return;
    }
    // Report the first diverging line for a readable failure.
    for (i, (want, got)) in expected.lines().zip(rendered.lines()).enumerate() {
        assert_eq!(
            want,
            got,
            "golden line {} diverged — a hot-path change altered the seeded \
             simulation (see tests/golden.rs header)",
            i + 1
        );
    }
    panic!(
        "golden snapshot length changed: {} pinned lines vs {} now",
        expected.lines().count(),
        rendered.lines().count()
    );
}

/// Every built-in threat scenario's canonical hash, pinned as a
/// literal. The hash is FNV-1a 64 over the scenario's compact JSON —
/// the identity `ATLAS.md` rows and cross-revision comparisons key on
/// — so any edit to a scenario's definition (shares, parameters,
/// summary text, field order) fails here and forces a deliberate
/// decision: new scenario name, or accept the re-keyed atlas row.
#[test]
fn builtin_scenario_hashes_are_pinned() {
    let pinned: &[(&str, &str)] = &[
        ("base", "f25a04528cfe7f86"),
        ("selfish-majority", "bfff1c4945488418"),
        ("random-droppers", "6e9f2682e8f4bae2"),
        ("slanderers", "bfb0a26aec21710c"),
        ("colluding-clique", "16721b978a514fc9"),
        ("on-off-grudgers", "0c9058f5735d0078"),
        ("whitewashers", "c81619e4491246d2"),
        ("energy-flooders", "ac489e1a0a8d7e21"),
        ("low-power-mesh", "3bdf32e2cb839707"),
    ];
    let all = ahn::core::builtin_scenarios();
    assert_eq!(
        all.len(),
        pinned.len(),
        "registry changed size — pin the new scenario's hash here"
    );
    for (scenario, (name, hash)) in all.iter().zip(pinned) {
        assert_eq!(&scenario.name, name, "registry order is part of the pin");
        assert_eq!(
            format!("{:016x}", scenario.canonical_hash()),
            *hash,
            "canonical hash of scenario {:?} drifted",
            scenario.name
        );
    }
}
