//! Property-based tests of the reconstruction-search scoring: whatever
//! candidate the family produces and whatever cooperation levels an
//! evaluation measures, the calibration loss must be finite,
//! non-negative and zero exactly on a perfect match.

use ahn::core::calibrate::{
    case_error, paper_target, per_env_targets, selection_variant, CalibrationGrid,
    SELECTION_VARIANTS,
};
use ahn::game::enumerate_reconstructions;
use proptest::prelude::*;

/// An arbitrary cooperation level in [0, 1].
fn coop() -> impl proptest::strategy::Strategy<Value = f64> {
    (0u32..=1000).prop_map(|n| n as f64 / 1000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The per-case error is finite and non-negative for every case and
    /// any measured cooperation, and bounded by 1 (both sides live in
    /// [0, 1]).
    #[test]
    fn case_error_is_finite_nonnegative_and_bounded(
        case_no in 1usize..=4,
        aggregate in coop(),
        envs in proptest::collection::vec(coop(), 4),
    ) {
        let e = case_error(case_no, aggregate, &envs);
        prop_assert!(e.is_finite());
        prop_assert!((0.0..=1.0).contains(&e), "error {e} out of range");
        // A perfect reproduction scores exactly zero.
        let exact_envs: Vec<f64> = per_env_targets(case_no)
            .map(|t| t.to_vec())
            .unwrap_or_default();
        prop_assert_eq!(case_error(case_no, paper_target(case_no), &exact_envs), 0.0);
    }

    /// Every candidate a grid can generate resolves to a valid
    /// configuration whose loss terms are well-defined: the payoff
    /// table passes the constraint checker, the selection variant
    /// validates, and the candidate round-trips through serde.
    #[test]
    fn generated_candidates_resolve_and_roundtrip(
        pick in any::<u64>(),
        scale_idx in 0usize..3,
        selection_idx in 0usize..SELECTION_VARIANTS.len(),
    ) {
        let mut grid = CalibrationGrid::smoke();
        grid.scales = vec![[0.5, 1.0, 2.0][scale_idx]];
        grid.selections = vec![SELECTION_VARIANTS[selection_idx].into()];
        grid.max_candidates = 0;
        let candidates = grid.candidates();
        prop_assert_eq!(candidates.len(), enumerate_reconstructions().len());
        let candidate = &candidates[(pick % candidates.len() as u64) as usize];
        candidate.payoff.check_paper_constraints().unwrap();
        let (selection, _) = selection_variant(&candidate.selection).unwrap();
        selection.validate().unwrap();
        let config = grid.resolve(candidate).unwrap();
        config.validate().unwrap();
        prop_assert_eq!(config.payoff, candidate.payoff);
        let json = serde_json::to_string(candidate).unwrap();
        let back: ahn::core::calibrate::CandidateSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(candidate.clone(), back);
    }
}
