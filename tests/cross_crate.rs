//! Cross-crate integration: pieces from different crates composed in
//! ways the main harness does not exercise.

use ahn::bitstr::BitStr;
use ahn::game::{game::Scratch, play_game, Arena, GameConfig, NodeKind};
use ahn::net::topology::{MobileNetwork, WaypointParams};
use ahn::net::{NodeId, PathMode, RouteSelection, TrustLevel};
use ahn::strategy::{reduced::ReducedStrategy, Strategy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// The topology module can replace the abstract relay pool: draw the
/// participant set from a geometric neighborhood and play real games on
/// it.
#[test]
fn games_on_topology_derived_pools() {
    let mut r = rng(5);
    // Dense network so most nodes are reachable.
    let net = MobileNetwork::new(
        &mut r,
        20,
        WaypointParams {
            side: 400.0,
            ..WaypointParams::default()
        },
        250.0,
    );
    let mut arena = Arena::new(
        vec![Strategy::always_forward(); 20],
        0,
        GameConfig::paper(PathMode::Shorter),
        1,
    );
    let mut scratch = Scratch::default();
    let mut played = 0;
    for src in 0..20u32 {
        let src = NodeId(src);
        // Participants: the source plus its geometric neighborhood.
        let mut participants = vec![src];
        participants.extend(net.neighbors(src));
        if participants.len() < 3 {
            continue;
        }
        let report = play_game(&mut arena, &mut r, src, &participants, 0, &mut scratch);
        assert!(
            report.outcome.delivered(),
            "all-cooperator pool must deliver"
        );
        assert!(report.hops >= 1);
        played += 1;
    }
    assert!(played > 10, "topology too sparse for the test: {played}");
    arena.reputation.check_invariants().unwrap();
}

/// The reduced (5-bit) codec and a hand-lifted full strategy must play
/// identically: the ablation changes the genome, not the game.
#[test]
fn reduced_strategy_plays_like_its_lift() {
    let genome: BitStr = "01011".parse().unwrap();
    let reduced = ReducedStrategy::from_bits(genome);
    let lifted = reduced.lift();

    let play = |strategy: Strategy, seed: u64| {
        let mut arena = Arena::new(
            vec![strategy; 8],
            2,
            GameConfig::paper(PathMode::Shorter),
            1,
        );
        let ids: Vec<NodeId> = (0..10u32).map(NodeId).collect();
        let mut r = rng(seed);
        let mut scratch = Scratch::default();
        for _ in 0..50 {
            for &src in &ids {
                play_game(&mut arena, &mut r, src, &ids, 0, &mut scratch);
            }
        }
        (*arena.metrics.env(0), arena.fitnesses())
    };

    // The lift is exact, so identical seeds give identical histories.
    assert_eq!(play(lifted.clone(), 77), play(lifted, 77));
}

/// Random droppers (the extension node kind) interpolate between normal
/// cooperators and CSN.
#[test]
fn random_droppers_interpolate() {
    let coop_with_dropper = |p: f64| {
        let kinds: Vec<NodeKind> = (0..8)
            .map(|_| NodeKind::Normal)
            .chain((0..2).map(|_| NodeKind::RandomDropper(p)))
            .collect();
        let mut arena = Arena::with_kinds(
            vec![Strategy::always_forward(); 8],
            kinds,
            GameConfig::paper(PathMode::Shorter),
            1,
        );
        let ids: Vec<NodeId> = (0..10u32).map(NodeId).collect();
        let mut r = rng(3);
        let mut scratch = Scratch::default();
        for _ in 0..100 {
            for &src in &ids {
                play_game(&mut arena, &mut r, src, &ids, 0, &mut scratch);
            }
        }
        arena.metrics.env(0).cooperation_level()
    };
    let none = coop_with_dropper(0.0);
    let half = coop_with_dropper(0.5);
    let full = coop_with_dropper(1.0);
    assert!(
        none > half && half > full,
        "{none:.2} / {half:.2} / {full:.2}"
    );
    assert_eq!(none, 1.0);
}

/// Random route selection really disables reputation-based avoidance.
#[test]
fn route_selection_policies_differ_under_selfishness() {
    let run = |selection: RouteSelection| {
        let mut config = GameConfig::paper(PathMode::Longer);
        config.route_selection = selection;
        let mut arena = Arena::new(vec![Strategy::always_forward(); 8], 4, config, 1);
        let ids: Vec<NodeId> = (0..12u32).map(NodeId).collect();
        let mut r = rng(11);
        let mut scratch = Scratch::default();
        for _ in 0..150 {
            for &src in &ids {
                play_game(&mut arena, &mut r, src, &ids, 0, &mut scratch);
            }
        }
        arena.metrics.env(0).cooperation_level()
    };
    let rated = run(RouteSelection::BestRated);
    let random = run(RouteSelection::Random);
    assert!(
        rated > random,
        "avoidance should beat random routing: {rated:.3} vs {random:.3}"
    );
}

/// Trust-threshold strategies expressed via the public API behave like
/// their textual description.
#[test]
fn trust_threshold_matches_description() {
    for min in TrustLevel::ALL {
        let s = Strategy::trust_threshold(min, false);
        for t in TrustLevel::ALL {
            for a in ahn::net::ActivityLevel::ALL {
                let expect = t >= min;
                assert_eq!(
                    s.decision(t, a) == ahn::strategy::Decision::Forward,
                    expect,
                    "min {min}, trust {t}, activity {a}"
                );
            }
        }
    }
}

/// The GA engine evolves IPDRP and ad hoc genomes with the same operator
/// stack (the genome length is the only difference).
#[test]
fn ga_engine_is_genome_length_agnostic() {
    use ahn::ga::{evolve, GaParams};
    let mut r = rng(13);
    for bits in [5usize, 13] {
        let history = evolve(&mut r, &GaParams::paper(), 20, bits, 15, |pop| {
            pop.iter().map(|g| g.count_ones() as f64).collect()
        });
        assert_eq!(history.len(), 15);
        assert!(history.last().unwrap().stats.best >= (bits as f64) - 2.0);
        assert_eq!(history.last().unwrap().best.len(), bits);
    }
}

/// The acceptance claim of the sparse substrate: a 1 000-node arena
/// running paper-style traffic (50-participant tournaments drawn from
/// the big network) holds its reputation in O(observed-pairs) memory —
/// at least 5x below the dense N x N equivalent — while producing
/// observationally identical state.
#[test]
fn bignet_reputation_memory_is_o_observed_pairs() {
    use ahn::game::Tournament;
    use ahn::net::ReputationMatrix;

    let mut r = rng(29);
    let mut arena = Arena::new(
        (0..900).map(|_| Strategy::random(&mut r)).collect(),
        100,
        GameConfig::paper(PathMode::Shorter),
        1,
    );
    assert!(
        arena.reputation.is_sparse(),
        "a 1000-node arena must construct on the sparse backing"
    );

    // Paper-style traffic: a handful of 50-participant tournaments, each
    // over a different slice of the network.
    let tournament = Tournament::new(50);
    for t in 0..6u32 {
        let participants: Vec<NodeId> = (0..50u32).map(|i| NodeId(t * 150 + i)).collect();
        tournament.run(&mut arena, &mut r, &participants, 0);
    }
    arena.reputation.check_invariants().unwrap();

    let pairs = arena.reputation.observed_pairs();
    assert!(pairs > 1000, "traffic should observe many pairs: {pairs}");
    let sparse_bytes = arena.reputation.resident_bytes();
    let dense_bytes = ReputationMatrix::new_dense(1000).resident_bytes();
    assert!(
        sparse_bytes * 5 <= dense_bytes,
        "sparse {sparse_bytes}B must be >=5x below dense {dense_bytes}B \
         ({pairs} observed pairs)"
    );
}
