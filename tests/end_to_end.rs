//! End-to-end behavioral tests of the full reproduction stack.
//!
//! These assert the paper's *qualitative* claims at test scale: the
//! cooperation-enforcement mechanism works, it needs the reputation
//! response to work, and selfish nodes are starved rather than served.

use ahn::core::{
    baselines,
    cases::CaseSpec,
    config::ExperimentConfig,
    experiment::{run_experiment, run_replication},
};
use ahn::game::PayoffConfig;
use ahn::net::{PathMode, TrustLevel};
use ahn::strategy::Strategy;

fn test_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.population = 20;
    cfg.rounds = 30;
    cfg.generations = 35;
    cfg.replications = 3;
    cfg
}

#[test]
fn cooperation_evolves_without_selfish_nodes() {
    // 10-participant tournaments need a longer reputation horizon than
    // the paper's 50-participant ones before cooperation is the stable
    // winner; R = 100 / 60 generations is comfortably inside the basin
    // (final cooperation ~0.95 here vs ~0.45 at R = 30).
    let mut cfg = test_config();
    cfg.rounds = 100;
    cfg.generations = 60;
    let case = CaseSpec::mini("clean", &[0], 10, PathMode::Shorter);
    let result = run_experiment(&cfg, &case);
    let means = result.coop_series.means();
    let early: f64 = means[..5].iter().sum::<f64>() / 5.0;
    let late = result.final_coop.mean().unwrap();
    assert!(
        late > early + 0.2,
        "cooperation should rise substantially: early {early:.2} -> late {late:.2}"
    );
    assert!(late > 0.5, "final cooperation too low: {late:.2}");
}

#[test]
fn cooperation_collapses_without_reputation_response() {
    // DESIGN.md A4: with no reputation response at all — discarding
    // always out-pays forwarding AND routes are chosen blindly —
    // selfishness must win (§4.2's counterfactual).
    let mut cfg = test_config();
    cfg.payoff = PayoffConfig::no_reputation();
    cfg.route_selection = ahn::net::RouteSelection::Random;
    let case = CaseSpec::mini("no-rep", &[0], 10, PathMode::Shorter);
    let result = run_experiment(&cfg, &case);
    let late = result.final_coop.mean().unwrap();
    assert!(late < 0.15, "defection should dominate, got {late:.2}");
}

#[test]
fn selfish_majority_depresses_cooperation() {
    let cfg = test_config();
    let clean = run_experiment(&cfg, &CaseSpec::mini("clean", &[0], 10, PathMode::Shorter));
    let hostile = run_experiment(
        &cfg,
        &CaseSpec::mini("hostile", &[6], 10, PathMode::Shorter),
    );
    let clean_coop = clean.final_coop.mean().unwrap();
    let hostile_coop = hostile.final_coop.mean().unwrap();
    assert!(
        hostile_coop < clean_coop * 0.6,
        "60% CSN should slash cooperation: {clean_coop:.2} vs {hostile_coop:.2}"
    );
}

#[test]
fn csn_are_starved_not_served() {
    // The paper's Table 6 shape: requests from CSN are mostly rejected
    // once reputation forms; requests from normal nodes fare far better.
    // 30% CSN at 10-participant scale sits in the defection basin at
    // R = 30; the longer horizon lets reputation form so enforcement
    // (serve normals, starve CSN) is visible.
    let mut cfg = test_config();
    cfg.rounds = 100;
    cfg.generations = 60;
    let case = CaseSpec::mini("starve", &[3], 10, PathMode::Shorter);
    let result = run_experiment(&cfg, &case);
    let nn_accept = result.req_from_nn.accepted.mean().unwrap();
    let csn_accept = result.req_from_csn.accepted.mean().unwrap();
    assert!(
        csn_accept < nn_accept,
        "CSN should be served less than normal nodes: {csn_accept:.2} vs {nn_accept:.2}"
    );
    assert!(
        csn_accept < 0.35,
        "CSN acceptance should collapse, got {csn_accept:.2}"
    );
}

#[test]
fn longer_paths_hurt_cooperation() {
    // Cases 3 vs 4 in miniature (Table 5's shape). 20% CSN: at 40% both
    // modes collapse to all-defect at this scale and the contrast
    // degenerates to 0 vs 0.
    let cfg = test_config();
    let sp = run_experiment(&cfg, &CaseSpec::mini("sp", &[2], 10, PathMode::Shorter));
    let lp = run_experiment(&cfg, &CaseSpec::mini("lp", &[2], 10, PathMode::Longer));
    let sp_coop = sp.final_coop.mean().unwrap();
    let lp_coop = lp.final_coop.mean().unwrap();
    assert!(
        lp_coop < sp_coop,
        "longer paths should deliver less under CSN: SP {sp_coop:.2} vs LP {lp_coop:.2}"
    );
    // And CSN-free paths are rarer under LP.
    let sp_free = sp.per_env_csn_free[0].mean().unwrap();
    let lp_free = lp.per_env_csn_free[0].mean().unwrap();
    assert!(lp_free < sp_free, "SP {sp_free:.2} vs LP {lp_free:.2}");
}

#[test]
fn evolved_strategies_discriminate_by_trust() {
    // Table 8's shape: full service at trust 3, harshness at trust 0.
    let mut cfg = test_config();
    cfg.generations = 45;
    cfg.replications = 4;
    let case = CaseSpec::mini("disc", &[0, 4], 10, PathMode::Shorter);
    let result = run_experiment(&cfg, &case);
    let full_service_t3 = result.census.forward_at_least(TrustLevel::T3, 3);
    let full_service_t0 = result.census.forward_at_least(TrustLevel::T0, 3);
    assert!(
        full_service_t3 > full_service_t0,
        "trust 3 should be served more than trust 0: {full_service_t3:.2} vs {full_service_t0:.2}"
    );
}

#[test]
fn static_baseline_ordering_under_csn() {
    // AllC delivers the most but feeds CSN; AllD delivers nothing; the
    // trust-threshold discriminator sits in between on delivery.
    let mut cfg = test_config();
    cfg.rounds = 50;
    let case = CaseSpec::mini("static", &[3], 10, PathMode::Shorter);
    let allc = baselines::evaluate_static(&cfg, &case, &[Strategy::always_forward()], 1);
    let alld = baselines::evaluate_static(&cfg, &case, &[Strategy::always_discard()], 1);
    let disc = baselines::evaluate_static(
        &cfg,
        &case,
        &[Strategy::trust_threshold(TrustLevel::T1, true)],
        1,
    );
    assert_eq!(alld.cooperation_level(), 0.0);
    // AllC and the discriminator both deliver well (both route around
    // CSN, and normal sources keep high trust under the discriminator);
    // the difference is who they serve, checked below.
    assert!(allc.cooperation_level() > 0.3);
    assert!(disc.cooperation_level() > 0.1);
    // But AllC accepts CSN packets wholesale while the discriminator
    // rejects them - the enforcement difference.
    let (allc_accept, _, _) = allc.from_csn.fractions();
    let (disc_accept, _, _) = disc.from_csn.fractions();
    assert!(
        disc_accept < allc_accept,
        "discriminator should starve CSN: {disc_accept:.2} vs {allc_accept:.2}"
    );
}

#[test]
fn replication_metrics_are_internally_consistent() {
    let cfg = test_config();
    let case = CaseSpec::mini("consistency", &[2, 4], 10, PathMode::Longer);
    let r = run_replication(&cfg, &case, 9);
    // Per-env totals must add up to the whole-run totals.
    let sum_games: u64 = r.final_by_env.iter().map(|m| m.nn_games).sum();
    assert_eq!(sum_games, r.final_total.nn_games);
    let sum_delivered: u64 = r.final_by_env.iter().map(|m| m.nn_delivered).sum();
    assert_eq!(sum_delivered, r.final_total.nn_delivered);
    // Cooperation values are probabilities.
    for m in &r.final_by_env {
        assert!(m.nn_delivered <= m.nn_games);
        assert!(m.nn_csn_free_path <= m.nn_games);
    }
    // Request accounting: acceptance fractions in [0,1] and the matrix is
    // populated on both sides (CSN sourced packets too).
    assert!(r.final_total.from_nn.total() > 0);
    assert!(r.final_total.from_csn.total() > 0);
}
