//! Property-based proof that the batched round kernel (PR 9) is
//! draw-for-draw equivalent to the scalar per-game loop.
//!
//! The in-crate tests of `ahn_game::batch` pin a handful of hand-picked
//! scenarios; this suite turns the claim into a property over arbitrary
//! `(participants, CSN share, path mode, rounds, seed)` at the three
//! scales that matter — 10 (smoke), 50 (paper) and 300 (mid-size, still
//! on the dense reputation backing). Equivalence means: identical
//! per-node payoffs and energy, identical environment metrics,
//! identical post-round reputation records for every (observer,
//! subject) pair, and both RNGs left at the same stream position.

use ahn::game::game::{play_game, Scratch};
use ahn::game::{play_round, Arena, BatchScratch, GameConfig};
use ahn::net::{NodeId, PathMode};
use ahn::strategy::Strategy;
use proptest::prelude::*;
use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runs `rounds` scalar rounds and `rounds` batched rounds from the
/// same seed on clones of one arena and asserts the results coincide.
fn check_equivalence(
    n_total: usize,
    csn: usize,
    mode: PathMode,
    rounds: usize,
    arena_seed: u64,
    play_seed: u64,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(arena_seed);
    let strategies: Vec<Strategy> = (0..n_total - csn)
        .map(|_| Strategy::random(&mut rng))
        .collect();
    let mut a_scalar = Arena::new(strategies, csn, GameConfig::paper(mode), 1);
    let mut a_batch = a_scalar.clone();
    let participants: Vec<NodeId> = (0..n_total as u32).map(NodeId).collect();

    let mut rng_s = ChaCha8Rng::seed_from_u64(play_seed);
    let mut rng_b = ChaCha8Rng::seed_from_u64(play_seed);
    let mut scratch_s = Scratch::default();
    let mut scratch_b = BatchScratch::default();
    for _ in 0..rounds {
        for &source in &participants {
            play_game(
                &mut a_scalar,
                &mut rng_s,
                source,
                &participants,
                0,
                &mut scratch_s,
            );
        }
        play_round(&mut a_batch, &mut rng_b, &participants, 0, &mut scratch_b);
    }

    prop_assert_eq!(&a_scalar.payoffs, &a_batch.payoffs);
    prop_assert_eq!(&a_scalar.energy, &a_batch.energy);
    prop_assert_eq!(a_scalar.metrics.env(0), a_batch.metrics.env(0));
    for o in 0..n_total as u32 {
        for s in 0..n_total as u32 {
            prop_assert_eq!(
                a_scalar.reputation.record(NodeId(o), NodeId(s)),
                a_batch.reputation.record(NodeId(o), NodeId(s)),
                "reputation record n{o} -> n{s} diverged"
            );
        }
    }
    prop_assert_eq!(rng_s.gen::<u64>(), rng_b.gen::<u64>());
}

/// One of the paper's two path-length modes.
fn path_mode() -> impl proptest::strategy::Strategy<Value = PathMode> {
    prop_oneof![Just(PathMode::Shorter), Just(PathMode::Longer)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Smoke scale: 10 participants, up to 30% CSN.
    #[test]
    fn batched_equals_scalar_at_10(
        csn in 0usize..=3,
        mode in path_mode(),
        rounds in 1usize..=3,
        arena_seed in any::<u64>(),
        play_seed in any::<u64>(),
    ) {
        check_equivalence(10, csn, mode, rounds, arena_seed, play_seed);
    }

    /// Paper scale: 50 participants, up to the paper's 20% CSN share.
    #[test]
    fn batched_equals_scalar_at_50(
        csn in 0usize..=10,
        mode in path_mode(),
        rounds in 1usize..=2,
        arena_seed in any::<u64>(),
        play_seed in any::<u64>(),
    ) {
        check_equivalence(50, csn, mode, rounds, arena_seed, play_seed);
    }
}

proptest! {
    // Fewer cases at the largest scale: each one plays 300–600 games
    // twice and compares 90 000 reputation records.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Mid scale: 300 participants — the largest dense-backing network.
    #[test]
    fn batched_equals_scalar_at_300(
        csn in 0usize..=60,
        mode in path_mode(),
        rounds in 1usize..=2,
        arena_seed in any::<u64>(),
        play_seed in any::<u64>(),
    ) {
        check_equivalence(300, csn, mode, rounds, arena_seed, play_seed);
    }
}
