//! Proof that the steady-state hot loop is allocation-free.
//!
//! A counting wrapper around the system allocator tracks every
//! allocation made by the *current thread*. After a warm-up phase grows
//! every scratch buffer to its high-water mark, full tournament rounds —
//! and GA breeding into a warm buffer — must not allocate a single byte.
//!
//! The counter is thread-local on purpose: the libtest harness's own
//! threads allocate asynchronously (its timed-wait machinery was
//! observed allocating during a sleep-only measured window), so a
//! process-global counter makes the test racy against the harness. The
//! invariant under test is about the simulating thread, and that is
//! exactly what a per-thread count pins — no harness noise, no
//! cross-test interference, and any allocation the hot loop itself
//! performs still fails the test.

use ahn::bitstr::BitStr;
use ahn::game::game::{play_game, Scratch};
use ahn::game::{Arena, GameConfig};
use ahn::net::{NodeId, PathMode};
use ahn::strategy::Strategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

thread_local! {
    // `const` init: the cell lives in the static TLS block, so bumping
    // it never allocates and never recurses into the allocator.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Adds one to the current thread's allocation count. `try_with`
/// tolerates calls during thread teardown, after TLS is gone.
fn count_one() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

#[test]
fn steady_state_tournament_round_allocates_zero_bytes() {
    // Longer-paths mode exercises the deepest buffers (up to 9 relays,
    // 3 candidates); a CSN minority exercises every decision branch.
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let strategies: Vec<Strategy> = (0..40).map(|_| Strategy::random(&mut rng)).collect();
    let mut arena = Arena::new(strategies, 10, GameConfig::paper(PathMode::Longer), 1);
    let participants: Vec<NodeId> = (0..50u32).map(NodeId).collect();
    let mut scratch = Scratch::default();

    // Warm-up: enough games that every scratch buffer, metrics counter
    // and reputation cell has reached its steady-state capacity.
    for _ in 0..40 {
        for &source in &participants {
            play_game(&mut arena, &mut rng, source, &participants, 0, &mut scratch);
        }
    }

    // Measure: 20 full rounds (1000 games) must allocate nothing.
    let before = allocations();
    for _ in 0..20 {
        for &source in &participants {
            play_game(&mut arena, &mut rng, source, &participants, 0, &mut scratch);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state tournament rounds performed {} allocations",
        after - before
    );
}

#[test]
fn bignet_paper_traffic_round_allocates_zero_bytes_once_warm() {
    // A 1 000-node arena runs on the *sparse* reputation backing; with
    // paper-style traffic (50-participant tournaments inside the big
    // network) the sparse rows saturate after a short warm-up — all
    // co-occurring pairs observed — and rounds must then be
    // allocation-free exactly like the dense paper-scale case.
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let strategies: Vec<Strategy> = (0..900).map(|_| Strategy::random(&mut rng)).collect();
    let mut arena = Arena::new(strategies, 100, GameConfig::paper(PathMode::Longer), 1);
    assert!(arena.reputation.is_sparse(), "1000 nodes must be sparse");
    let participants: Vec<NodeId> = (0..50u32).map(NodeId).collect();
    let mut scratch = Scratch::default();

    for _ in 0..40 {
        for &source in &participants {
            play_game(&mut arena, &mut rng, source, &participants, 0, &mut scratch);
        }
    }

    let before = allocations();
    for _ in 0..20 {
        for &source in &participants {
            play_game(&mut arena, &mut rng, source, &participants, 0, &mut scratch);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state sparse rounds performed {} allocations",
        after - before
    );
}

#[test]
fn full_bignet_round_allocates_zero_bytes_once_rows_are_saturated() {
    // The stronger claim: a full 1 000-participant round — every node
    // sourcing one game among all 1 000 — allocates nothing once each
    // observer's row holds every possible subject. Organic play takes
    // hundreds of rounds to saturate the pair set, so pre-touch every
    // pair through the public API first (absorb is the gossip merge
    // entry point); the measured rounds then exercise pure probe/update
    // paths.
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let strategies: Vec<Strategy> = (0..800).map(|_| Strategy::random(&mut rng)).collect();
    let mut arena = Arena::new(strategies, 200, GameConfig::paper(PathMode::Longer), 1);
    assert!(arena.reputation.is_sparse());
    let participants: Vec<NodeId> = (0..1000u32).map(NodeId).collect();
    for o in 0..1000u32 {
        for s in 0..1000u32 {
            if o != s {
                arena.reputation.absorb(NodeId(o), NodeId(s), 1, 1);
            }
        }
    }
    let mut scratch = Scratch::default();
    // One warm-up round for the path/decision scratch buffers.
    for &source in &participants {
        play_game(&mut arena, &mut rng, source, &participants, 0, &mut scratch);
    }

    let before = allocations();
    for _ in 0..2 {
        for &source in &participants {
            play_game(&mut arena, &mut rng, source, &participants, 0, &mut scratch);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "saturated 1000-node rounds performed {} allocations",
        after - before
    );
}

#[test]
fn batched_round_allocates_zero_bytes_at_bignet_scale() {
    // The PR-9 batched kernel makes the stronger claim by construction:
    // its scratch is a handful of fixed-size arrays, so a full
    // 1 000-participant round through `play_round` must be
    // allocation-free once the reputation rows are saturated — no
    // per-game pool copy, no per-candidate buffer growth.
    use ahn::game::{play_round, BatchScratch};
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let strategies: Vec<Strategy> = (0..800).map(|_| Strategy::random(&mut rng)).collect();
    let mut arena = Arena::new(strategies, 200, GameConfig::paper(PathMode::Longer), 1);
    assert!(arena.reputation.is_sparse());
    let participants: Vec<NodeId> = (0..1000u32).map(NodeId).collect();
    for o in 0..1000u32 {
        for s in 0..1000u32 {
            if o != s {
                arena.reputation.absorb(NodeId(o), NodeId(s), 1, 1);
            }
        }
    }
    let mut scratch = BatchScratch::default();
    // One warm-up round for the metrics counters.
    play_round(&mut arena, &mut rng, &participants, 0, &mut scratch);

    let before = allocations();
    for _ in 0..2 {
        play_round(&mut arena, &mut rng, &participants, 0, &mut scratch);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "saturated batched 1000-node rounds performed {} allocations",
        after - before
    );
}

#[test]
fn histogram_record_allocates_zero_bytes() {
    // The instrumentation itself must be hot-loop-safe: recording into
    // an AtomicHistogram touches only its inline atomic buckets.
    let hist = ahn::obs::AtomicHistogram::new();
    hist.record(1);

    let before = allocations();
    for v in 0..10_000u64 {
        hist.record(v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "histogram recording performed {} allocations",
        after - before
    );
}

#[test]
fn noop_recorder_hooks_allocate_zero_bytes() {
    // The zero-cost-when-off contract: every NoopRecorder hook has an
    // empty body, so a fully instrumented generation loop driven with
    // it must not allocate (or do anything else).
    use ahn::obs::{NoopRecorder, Phase, Recorder};
    let mut recorder = NoopRecorder;

    let before = allocations();
    for generation in 0..10_000u64 {
        for phase in [Phase::Schedule, Phase::Play, Phase::Evolve] {
            recorder.begin(phase);
            recorder.end(phase);
        }
        recorder.generation(generation, 0.5);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "no-op recorder hooks performed {} allocations",
        after - before
    );
}

#[test]
fn breeding_into_a_warm_buffer_allocates_zero_bytes() {
    // 13-bit genomes are stored inline; with a warmed offspring buffer
    // the whole breed step is allocation-free.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let population: Vec<BitStr> = (0..100).map(|_| BitStr::random(&mut rng, 13)).collect();
    let fitnesses: Vec<f64> = (0..100).map(|i| i as f64).collect();
    let params = ahn::ga::GaParams::paper();
    let mut offspring: Vec<BitStr> = Vec::new();
    ahn::ga::next_generation_into(&mut rng, &params, &population, &fitnesses, &mut offspring);

    let before = allocations();
    for _ in 0..50 {
        ahn::ga::next_generation_into(&mut rng, &params, &population, &fitnesses, &mut offspring);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state breeding performed {} allocations",
        after - before
    );
}
