//! Reproducibility and serialization guarantees.
//!
//! Every run is a pure function of `(config, case, seed)` — the property
//! that makes the 60-replication averages of the paper reproducible and
//! lets rayon parallelism leave results bit-identical.

use ahn::core::{
    cases::CaseSpec,
    config::ExperimentConfig,
    experiment::{aggregate, run_experiment, run_replication, ExperimentResult},
};
use ahn::net::PathMode;

fn cfg() -> ExperimentConfig {
    let mut c = ExperimentConfig::smoke();
    c.generations = 8;
    c
}

#[test]
fn same_seed_same_everything() {
    let case = CaseSpec::mini("det", &[2], 10, PathMode::Longer);
    let a = run_replication(&cfg(), &case, 1234);
    let b = run_replication(&cfg(), &case, 1234);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let case = CaseSpec::mini("det", &[2], 10, PathMode::Shorter);
    let a = run_replication(&cfg(), &case, 1);
    let b = run_replication(&cfg(), &case, 2);
    assert_ne!(
        (a.coop_by_gen, a.final_population),
        (b.coop_by_gen, b.final_population)
    );
}

#[test]
fn parallel_experiment_is_deterministic() {
    let mut config = cfg();
    config.replications = 4;
    let case = CaseSpec::mini("det", &[1], 10, PathMode::Shorter);
    let a = run_experiment(&config, &case);
    let b = run_experiment(&config, &case);
    assert_eq!(a, b);
}

#[test]
fn aggregation_is_order_insensitive_for_series_means() {
    let config = cfg();
    let case = CaseSpec::mini("det", &[1], 10, PathMode::Shorter);
    let r1 = run_replication(&config, &case, 10);
    let r2 = run_replication(&config, &case, 11);
    let ab = aggregate(&config, &case, &[r1.clone(), r2.clone()]);
    let ba = aggregate(&config, &case, &[r2, r1]);
    // The Welford accumulators are association-sensitive in the last
    // ulps, so reported statistics agree to floating-point noise (the
    // census, being integer counts, must match exactly).
    let (ma, mb) = (ab.coop_series.means(), ba.coop_series.means());
    assert_eq!(ma.len(), mb.len());
    for (a, b) in ma.iter().zip(&mb) {
        assert!((a - b).abs() < 1e-12, "means diverge: {a} vs {b}");
    }
    let (fa, fb) = (ab.final_coop.mean().unwrap(), ba.final_coop.mean().unwrap());
    assert!((fa - fb).abs() < 1e-12, "final coop diverges: {fa} vs {fb}");
    assert_eq!(ab.census, ba.census);
}

#[test]
fn parallel_aggregation_is_bit_identical_to_a_serial_fold() {
    // The serve-path cache-correctness assumption: run_experiment's
    // rayon fan-out must be *bit-identical* to folding run_replication
    // serially over the same seeds — otherwise a cached result could
    // differ from a recomputed one by scheduling accident. Exercised
    // with enough replications to guarantee multiple worker chunks.
    let mut config = cfg();
    config.replications = 6;
    let case = CaseSpec::mini("fold", &[2], 10, PathMode::Longer);

    let parallel = run_experiment(&config, &case);
    let serial: Vec<_> = (0..config.replications as u64)
        .map(|k| run_replication(&config, &case, config.base_seed.wrapping_add(k)))
        .collect();
    let folded = aggregate(&config, &case, &serial);

    // Structural equality covers every float exactly (PartialEq on f64),
    // and the serialized forms match byte for byte — what the result
    // cache actually stores.
    assert_eq!(parallel, folded);
    assert_eq!(
        serde_json::to_string(&parallel).unwrap(),
        serde_json::to_string(&folded).unwrap()
    );
}

#[test]
fn experiment_result_serde_roundtrip() {
    let mut config = cfg();
    config.replications = 2;
    let case = CaseSpec::mini("serde", &[2], 10, PathMode::Shorter);
    let result = run_experiment(&config, &case);
    let json = serde_json::to_string(&result).expect("serializable");
    let back: ExperimentResult = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(result, back);
}

#[test]
fn config_and_case_serde_roundtrip() {
    let config = ExperimentConfig::scaled();
    let json = serde_json::to_string(&config).unwrap();
    let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, back);

    let case = CaseSpec::paper(4);
    let json = serde_json::to_string(&case).unwrap();
    let back: CaseSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(case, back);
}

#[test]
fn strategies_in_results_render_in_paper_notation() {
    let mut config = cfg();
    config.replications = 2;
    let case = CaseSpec::mini("notation", &[0], 10, PathMode::Shorter);
    let result = run_experiment(&config, &case);
    for (s, _) in result.census.top_strategies(3) {
        let text = s.to_string();
        // Four 3-bit groups plus the unknown bit: "xxx xxx xxx xxx x".
        assert_eq!(text.len(), 17, "unexpected notation: {text}");
        let reparsed: ahn::strategy::Strategy = text.parse().unwrap();
        assert_eq!(reparsed, s);
    }
}

// ---------------------------------------------------------------------
// Distributed-merge determinism: however cell completions arrive —
// permuted, duplicated, split across checkpoints — `merge_sweep` must
// reproduce the serial `run_sweep` report bit for bit. This is the
// property the distributed coordinator (`ahn::serve::run_sweep_via`)
// leans on.

use ahn::core::{merge_sweep, run_sweep, SweepCell, SweepGrid, SweepReport};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One serial reference run, shared by every proptest case.
fn sweep_fixture() -> &'static (SweepGrid, SweepReport, String) {
    static FIXTURE: OnceLock<(SweepGrid, SweepReport, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut base = cfg();
        base.generations = 3;
        base.replications = 1;
        let grid = SweepGrid {
            base,
            scenarios: None,
            cases: vec![1, 3],
            payoffs: vec!["paper".into()],
            sizes: vec![10],
            seed_blocks: vec![0, 1],
        };
        let report = run_sweep(&grid).expect("reference sweep");
        let json = serde_json::to_string(&report).expect("serialize reference");
        (grid, report, json)
    })
}

/// A reference sweep over the scenario axis (base + two attacker
/// scenarios), shared by the scenario-axis proptest.
fn scenario_sweep_fixture() -> &'static (SweepGrid, SweepReport, String) {
    static FIXTURE: OnceLock<(SweepGrid, SweepReport, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut base = cfg();
        base.generations = 3;
        base.replications = 1;
        let grid = SweepGrid {
            base,
            scenarios: Some(vec![
                "base".into(),
                "slanderers".into(),
                "whitewashers".into(),
            ]),
            cases: vec![1],
            payoffs: vec!["paper".into()],
            sizes: vec![10],
            seed_blocks: vec![0, 1],
        };
        let report = run_sweep(&grid).expect("reference scenario sweep");
        let json = serde_json::to_string(&report).expect("serialize reference");
        (grid, report, json)
    })
}

/// The scenario axis keeps the purity contract: resolving every cell
/// and running it as an ordinary single experiment (the distributed
/// worker path) merges to the exact bytes of the parallel
/// `run_sweep` — so scenario cells are bit-identical no matter how
/// many threads or workers computed them.
#[test]
fn scenario_cells_from_single_experiments_merge_to_the_sweep_bytes() {
    use ahn::core::cell_from_result;
    let (grid, _, reference_json) = scenario_sweep_fixture();
    let cells: Vec<SweepCell> = grid
        .cell_specs()
        .into_iter()
        .map(|spec| {
            let (config, case) = grid.resolve(&spec).expect("resolve scenario cell");
            let result = run_experiment(&config, &case);
            cell_from_result(spec, &config, &case, &result)
        })
        .collect();
    let merged = merge_sweep(grid, &cells).expect("merge worker-path cells");
    assert_eq!(
        &serde_json::to_string(&merged).expect("serialize merged"),
        reference_json
    );
}

/// A base-scenario coordinate (`Some("base")`) resolves to the same
/// `(config, case)` — and therefore the same seeds, streams and cache
/// keys — as the legacy scenario-free cell, up to the population floor
/// both paths apply.
#[test]
fn base_scenario_cells_match_legacy_cells() {
    let (grid, _, _) = sweep_fixture();
    let mut with_axis = grid.clone();
    with_axis.scenarios = Some(vec!["base".into()]);
    let legacy = grid.cell_specs();
    let scenarioed = with_axis.cell_specs();
    assert_eq!(legacy.len(), scenarioed.len());
    for (old, new) in legacy.iter().zip(&scenarioed) {
        assert_eq!(new.scenario.as_deref(), Some("base"));
        assert_eq!(
            grid.resolve(old).expect("legacy resolve"),
            with_axis.resolve(new).expect("scenario resolve"),
        );
    }
}

/// SplitMix64, used to derive a permutation from one proptest seed.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of completions — an arbitrary permutation, an
    /// arbitrary subset delivered twice, an arbitrary checkpoint split —
    /// merges to the serial report's exact bytes. A merge of only the
    /// first checkpoint's cells either already covers the grid or fails
    /// loudly about the missing cells; it never fabricates a report.
    #[test]
    fn any_completion_interleaving_merges_to_the_serial_report(
        perm_seed in any::<u64>(),
        dup_mask in any::<u32>(),
        split_pick in any::<u16>(),
    ) {
        let (grid, report, reference_json) = sweep_fixture();
        let mut arrivals: Vec<SweepCell> = report.cells.clone();
        let n = arrivals.len();

        // Duplicate the cells selected by the mask (a worker retrying a
        // completion the server already applied).
        for i in 0..n {
            if dup_mask & (1 << i) != 0 {
                arrivals.push(report.cells[i].clone());
            }
        }
        // Fisher-Yates with a seeded splitmix stream: an arbitrary
        // arrival order across workers.
        for i in (1..arrivals.len()).rev() {
            let j = (mix(perm_seed ^ i as u64) % (i as u64 + 1)) as usize;
            arrivals.swap(i, j);
        }

        let merged = merge_sweep(grid, &arrivals).expect("merge interleaved completions");
        prop_assert_eq!(
            serde_json::to_string(&merged).expect("serialize merged"),
            reference_json.as_str(),
            "an interleaving changed the merged bytes"
        );

        // A partial checkpoint: merging only the first chunk must either
        // cover every cell (then: identical bytes) or name a missing
        // cell — and replaying the rest on top always completes.
        let split = (split_pick as usize) % (arrivals.len() + 1);
        let (first, rest) = arrivals.split_at(split);
        match merge_sweep(grid, first) {
            Ok(partial) => prop_assert_eq!(
                serde_json::to_string(&partial).expect("serialize partial"),
                reference_json.as_str()
            ),
            Err(e) => prop_assert!(e.contains("never completed"), "unexpected error: {e}"),
        }
        let replayed: Vec<SweepCell> = first.iter().chain(rest.iter()).cloned().collect();
        let resumed = merge_sweep(grid, &replayed).expect("resume merge");
        prop_assert_eq!(
            serde_json::to_string(&resumed).expect("serialize resumed"),
            reference_json.as_str()
        );
    }

    /// The interleaving property holds on the scenario axis too: any
    /// permutation + duplication of scenario-keyed cells merges to the
    /// serial report's exact bytes, and dropping a scenario cell names
    /// it instead of fabricating a report.
    #[test]
    fn scenario_axis_merges_bit_identically_across_interleavings(
        perm_seed in any::<u64>(),
        dup_mask in any::<u32>(),
        drop_pick in any::<u16>(),
    ) {
        let (grid, report, reference_json) = scenario_sweep_fixture();
        let mut arrivals: Vec<SweepCell> = report.cells.clone();
        let n = arrivals.len();
        for i in 0..n {
            if dup_mask & (1 << i) != 0 {
                arrivals.push(report.cells[i].clone());
            }
        }
        for i in (1..arrivals.len()).rev() {
            let j = (mix(perm_seed ^ i as u64) % (i as u64 + 1)) as usize;
            arrivals.swap(i, j);
        }
        let merged = merge_sweep(grid, &arrivals).expect("merge scenario cells");
        prop_assert_eq!(
            serde_json::to_string(&merged).expect("serialize merged"),
            reference_json.as_str(),
            "an interleaving changed the scenario-sweep bytes"
        );

        // Removing every completion of one cell must fail loudly.
        let victim = report.cells[(drop_pick as usize) % n].spec.clone();
        let partial: Vec<SweepCell> = arrivals
            .iter()
            .filter(|c| c.spec != victim)
            .cloned()
            .collect();
        let err = merge_sweep(grid, &partial).expect_err("missing cell must not merge");
        prop_assert!(err.contains("never completed"), "unexpected error: {err}");
    }

    /// A completion that violates the purity contract — same cell
    /// coordinates, different numbers — must fail the merge loudly
    /// instead of silently picking a winner.
    #[test]
    fn conflicting_duplicates_fail_the_merge(which in 0usize..4, delta in 1u32..1000) {
        let (grid, report, _) = sweep_fixture();
        let mut arrivals: Vec<SweepCell> = report.cells.clone();
        let mut corrupt = arrivals[which].clone();
        corrupt.final_coop.add(delta as f64 / 1000.0);
        arrivals.push(corrupt);
        let err = merge_sweep(grid, &arrivals).expect_err("conflicting cells must not merge");
        prop_assert!(err.contains("conflicting"), "unexpected error: {err}");
    }
}
