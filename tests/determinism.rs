//! Reproducibility and serialization guarantees.
//!
//! Every run is a pure function of `(config, case, seed)` — the property
//! that makes the 60-replication averages of the paper reproducible and
//! lets rayon parallelism leave results bit-identical.

use ahn::core::{
    cases::CaseSpec,
    config::ExperimentConfig,
    experiment::{aggregate, run_experiment, run_replication, ExperimentResult},
};
use ahn::net::PathMode;

fn cfg() -> ExperimentConfig {
    let mut c = ExperimentConfig::smoke();
    c.generations = 8;
    c
}

#[test]
fn same_seed_same_everything() {
    let case = CaseSpec::mini("det", &[2], 10, PathMode::Longer);
    let a = run_replication(&cfg(), &case, 1234);
    let b = run_replication(&cfg(), &case, 1234);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let case = CaseSpec::mini("det", &[2], 10, PathMode::Shorter);
    let a = run_replication(&cfg(), &case, 1);
    let b = run_replication(&cfg(), &case, 2);
    assert_ne!(
        (a.coop_by_gen, a.final_population),
        (b.coop_by_gen, b.final_population)
    );
}

#[test]
fn parallel_experiment_is_deterministic() {
    let mut config = cfg();
    config.replications = 4;
    let case = CaseSpec::mini("det", &[1], 10, PathMode::Shorter);
    let a = run_experiment(&config, &case);
    let b = run_experiment(&config, &case);
    assert_eq!(a, b);
}

#[test]
fn aggregation_is_order_insensitive_for_series_means() {
    let config = cfg();
    let case = CaseSpec::mini("det", &[1], 10, PathMode::Shorter);
    let r1 = run_replication(&config, &case, 10);
    let r2 = run_replication(&config, &case, 11);
    let ab = aggregate(&config, &case, &[r1.clone(), r2.clone()]);
    let ba = aggregate(&config, &case, &[r2, r1]);
    // The Welford accumulators are association-sensitive in the last
    // ulps, so reported statistics agree to floating-point noise (the
    // census, being integer counts, must match exactly).
    let (ma, mb) = (ab.coop_series.means(), ba.coop_series.means());
    assert_eq!(ma.len(), mb.len());
    for (a, b) in ma.iter().zip(&mb) {
        assert!((a - b).abs() < 1e-12, "means diverge: {a} vs {b}");
    }
    let (fa, fb) = (ab.final_coop.mean().unwrap(), ba.final_coop.mean().unwrap());
    assert!((fa - fb).abs() < 1e-12, "final coop diverges: {fa} vs {fb}");
    assert_eq!(ab.census, ba.census);
}

#[test]
fn parallel_aggregation_is_bit_identical_to_a_serial_fold() {
    // The serve-path cache-correctness assumption: run_experiment's
    // rayon fan-out must be *bit-identical* to folding run_replication
    // serially over the same seeds — otherwise a cached result could
    // differ from a recomputed one by scheduling accident. Exercised
    // with enough replications to guarantee multiple worker chunks.
    let mut config = cfg();
    config.replications = 6;
    let case = CaseSpec::mini("fold", &[2], 10, PathMode::Longer);

    let parallel = run_experiment(&config, &case);
    let serial: Vec<_> = (0..config.replications as u64)
        .map(|k| run_replication(&config, &case, config.base_seed.wrapping_add(k)))
        .collect();
    let folded = aggregate(&config, &case, &serial);

    // Structural equality covers every float exactly (PartialEq on f64),
    // and the serialized forms match byte for byte — what the result
    // cache actually stores.
    assert_eq!(parallel, folded);
    assert_eq!(
        serde_json::to_string(&parallel).unwrap(),
        serde_json::to_string(&folded).unwrap()
    );
}

#[test]
fn experiment_result_serde_roundtrip() {
    let mut config = cfg();
    config.replications = 2;
    let case = CaseSpec::mini("serde", &[2], 10, PathMode::Shorter);
    let result = run_experiment(&config, &case);
    let json = serde_json::to_string(&result).expect("serializable");
    let back: ExperimentResult = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(result, back);
}

#[test]
fn config_and_case_serde_roundtrip() {
    let config = ExperimentConfig::scaled();
    let json = serde_json::to_string(&config).unwrap();
    let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, back);

    let case = CaseSpec::paper(4);
    let json = serde_json::to_string(&case).unwrap();
    let back: CaseSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(case, back);
}

#[test]
fn strategies_in_results_render_in_paper_notation() {
    let mut config = cfg();
    config.replications = 2;
    let case = CaseSpec::mini("notation", &[0], 10, PathMode::Shorter);
    let result = run_experiment(&config, &case);
    for (s, _) in result.census.top_strategies(3) {
        let text = s.to_string();
        // Four 3-bit groups plus the unknown bit: "xxx xxx xxx xxx x".
        assert_eq!(text.len(), 17, "unexpected notation: {text}");
        let reparsed: ahn::strategy::Strategy = text.parse().unwrap();
        assert_eq!(reparsed, s);
    }
}
