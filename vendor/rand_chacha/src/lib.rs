//! Offline shim for `rand_chacha`: a genuine 8-round ChaCha stream
//! cipher used as an RNG (the classic djb variant: 256-bit key, 64-bit
//! block counter, 64-bit nonce fixed to zero).
//!
//! Deterministic for a given seed and `Clone`-stable: cloning captures
//! the exact stream position. Not guaranteed word-for-word identical to
//! upstream `rand_chacha` (see `vendor/README.md`).

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unconsumed word in `buf`; `BLOCK_WORDS` means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// "expand 32-byte k", the standard ChaCha constant words.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] is the 64-bit nonce, fixed to zero.
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.buf = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Number of 32-bit words consumed from the stream so far.
    pub fn get_word_pos(&self) -> u128 {
        if self.index >= BLOCK_WORDS {
            // Fresh or exhausted buffer: everything generated is consumed.
            (self.counter as u128) * BLOCK_WORDS as u128
        } else {
            // `counter` already points past the buffered block.
            (self.counter as u128 - 1) * BLOCK_WORDS as u128 + self.index as u128
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: both words are buffered — one bounds branch instead
        // of two. Word order (lo then hi) matches the generic path, so
        // the stream is identical.
        if self.index + 2 <= BLOCK_WORDS {
            let lo = self.buf[self.index] as u64;
            let hi = self.buf[self.index + 1] as u64;
            self.index += 2;
            return lo | (hi << 32);
        }
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn word_pos_counts_consumed_words() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(rng.get_word_pos(), 0);
        rng.next_u32();
        assert_eq!(rng.get_word_pos(), 1);
        for _ in 0..16 {
            rng.next_u32();
        }
        assert_eq!(rng.get_word_pos(), 17);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniformish_outputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
