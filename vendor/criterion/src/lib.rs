//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Really times the benchmarked routines (calibrated batch sizing, then
//! `sample_size` timed batches; reports min/median/mean per iteration).
//! No HTML reports, plots, or statistical regression testing — numbers
//! print to stdout. See `vendor/README.md`.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measured sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Benchmarks one routine under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks one routine under `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Passed to the benchmarked closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times, recording the total elapsed
    /// wall-clock time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: grow the batch until it costs ~TARGET_SAMPLE.
    let mut iters: u64 = 1;
    let per_iter_estimate = loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
            break bencher.elapsed.as_secs_f64() / iters as f64;
        }
        // Aim straight for the target based on what we have seen so far.
        let per_iter = bencher.elapsed.as_secs_f64().max(1e-9) / iters as f64;
        let wanted = (TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64;
        iters = wanted
            .clamp(iters * 2, iters.saturating_mul(100))
            .max(iters + 1);
    };
    let _ = per_iter_estimate;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench: {id:<44} min {:>12} median {:>12} mean {:>12} ({} iters x {} samples)",
        format_time(min),
        format_time(median),
        format_time(mean),
        iters,
        samples.len(),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
