//! A strict recursive-descent JSON parser producing [`Value`] trees.

use crate::{Error, Value};
use serde::de::Error as _;

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.parse_value(0)?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Recursion guard: deeper nesting than this is rejected rather than
/// overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        let (line, col) = self.line_col();
        Error::custom(format!("{msg} at line {line} column {col}"))
    }

    fn line_col(&self) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected `{literal}`")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.parse_unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // byte boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, combining surrogate pairs.
    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.parse_hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.parse_hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            Err(self.error("unpaired surrogate in \\u escape"))
        } else if (0xDC00..0xE000).contains(&first) {
            Err(self.error("unpaired low surrogate in \\u escape"))
        } else {
            char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.error("invalid hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.error("expected digit in number"));
        }
        // Integer part: no leading zeros (except bare 0).
        if self.peek() == Some(b'0') {
            self.pos += 1;
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("leading zeros are not allowed"));
            }
        } else {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
            Ok(Value::F64(v))
        } else if negative {
            match text.parse::<i64>() {
                Ok(v) => Ok(Value::I64(v)),
                // Magnitude beyond i64: degrade to f64, like serde_json's
                // arbitrary-precision-off behavior.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| self.error("invalid number")),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Value::U64(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| self.error("invalid number")),
            }
        }
    }
}
