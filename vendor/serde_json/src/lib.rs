//! Offline shim for the subset of `serde_json` 1.0 this workspace uses:
//! `to_string` / `to_string_pretty` / `from_str`, `Value` with indexing,
//! `to_value` / `from_value`, and the `json!` macro.
//!
//! Backed by a complete little JSON parser and writer (string escapes,
//! `\uXXXX` with surrogate pairs, exponent floats) over the vendored
//! serde data model.

#![deny(missing_docs)]

use serde::content;
use serde::ser::ContentSerializer;
use std::fmt;

mod parser;

/// A parsed JSON value (re-export of the serde shim's data model).
pub type Value = content::Content;

/// Errors from (de)serializing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    let content = value.serialize(ContentSerializer::<Error>::new())?;
    let mut out = String::new();
    content::write_compact(&mut out, &content);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    let content = value.serialize(ContentSerializer::<Error>::new())?;
    let mut out = String::new();
    content::write_pretty(&mut out, &content, 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: serde::DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parser::parse(input)?;
    serde::de::from_content(value)
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: ?Sized + serde::Serialize>(value: &T) -> Result<Value, Error> {
    value.serialize(ContentSerializer::<Error>::new())
}

/// Builds a value of any deserializable type from a [`Value`] tree.
pub fn from_value<T: serde::DeserializeOwned>(value: Value) -> Result<T, Error> {
    serde::de::from_content(value)
}

/// Builds a [`Value`] from a JSON-ish literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $($crate::json!($elem)),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Map(vec![ $(($key.to_owned(), $crate::json!($val))),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value is serializable")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let text = r#"{"a": [1, -2, 3.5, true, null, "x\né"], "b": {"c": 18446744073709551615}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][2], Value::F64(3.5));
        assert_eq!(v["b"]["c"], Value::U64(u64::MAX));
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!(5), Value::U64(5));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(
            json!([1, "two"]),
            Value::Seq(vec![Value::U64(1), Value::String("two".into())])
        );
        assert_eq!(
            json!({"k": 1}),
            Value::Map(vec![("k".into(), Value::U64(1))])
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(from_str::<Value>("{} x").is_err());
        assert!(from_str::<Value>("{,}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v: Value = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::String("\u{1F600}".into()));
    }
}
