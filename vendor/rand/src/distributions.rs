//! Distributions: the `Standard` distribution and uniform ranges.

use crate::Rng;

/// Types that can produce values of `T` from a random source.
pub trait Distribution<T> {
    /// Samples one value from the distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: full-range integers, `[0, 1)` floats,
/// fair booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform sampling over ranges.
pub mod uniform {
    use crate::Rng;

    /// Range types that can be sampled from directly.
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range.
        ///
        /// # Panics
        /// Panics if the range is empty.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Draws a uniform integer in `[0, span)` by rejection sampling, so
    /// every value is exactly equally likely.
    ///
    /// The accept/reject set is `v <= zone` with
    /// `zone = u64::MAX - (u64::MAX % span) - 1`; since
    /// `zone >= u64::MAX - span`, a draw at or below `u64::MAX - span`
    /// is accepted without ever computing the zone, saving one 64-bit
    /// division per draw on the (hot) common path. The draw sequence and
    /// results are identical to the always-compute-the-zone form.
    #[inline]
    pub(crate) fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return rng.next_u64() & (span - 1);
        }
        loop {
            let v = rng.next_u64();
            if v <= u64::MAX - span {
                return v % span;
            }
            // Within `span` of the top: fall back to the exact zone test
            // (probability < 2^-53 for the small spans used here).
            let zone = u64::MAX - (u64::MAX % span) - 1;
            if v <= zone {
                return v % span;
            }
        }
    }

    macro_rules! range_int {
        ($($t:ty as $wide:ty),* $(,)?) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
                }
            }
        )*};
    }

    range_int!(
        u8 as u64,
        u16 as u64,
        u32 as u64,
        u64 as u64,
        usize as u64,
        i8 as i64,
        i16 as i64,
        i32 as i64,
        i64 as i64,
        isize as i64,
    );

    macro_rules! range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let unit: $t = rng.gen();
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let unit: $t = rng.gen();
                    lo + unit * (hi - lo)
                }
            }
        )*};
    }

    range_float!(f32, f64);
}
