//! Sequence helpers: shuffling and choosing, mirroring `rand::seq`.

use crate::distributions::uniform::uniform_u64_below;
use crate::Rng;

/// Extension trait adding random operations to slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle of the whole slice.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Shuffles `amount` randomly chosen elements into the *end* of the
    /// slice (upstream `rand` 0.8 convention) and returns
    /// `(shuffled, rest)`.
    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = uniform_u64_below(rng, self.len() as u64) as usize;
            Some(&self[i])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let (shuffled, _) = self.partial_shuffle(rng, self.len());
        debug_assert_eq!(shuffled.len(), self.len());
    }

    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let len = self.len();
        let amount = amount.min(len);
        // Swap a random earlier element into each of the last `amount`
        // positions, back to front — upstream's algorithm.
        for i in ((len - amount)..len).rev() {
            let j = uniform_u64_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
        let (rest, shuffled) = self.split_at_mut(len - amount);
        (shuffled, rest)
    }
}
