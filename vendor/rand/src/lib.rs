//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! See `vendor/README.md` for scope and the swap-out path back to the
//! real crate. The trait layering (`RngCore` → blanket `Rng`, `&mut R`
//! forwarding) mirrors upstream so call sites compile unchanged.

#![deny(missing_docs)]

pub mod distributions;
pub mod seq;

/// Low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a new instance from the given seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a new instance, expanding `state` into a full seed with
    /// SplitMix64 (the same expansion upstream `rand_core` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a random value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Returns a uniformly random value within `range`.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53-bit precision, matching the f64 standard distribution.
        let v: f64 = self.gen();
        v < p
    }

    /// Fills `dest` entirely with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Re-exports of the most common items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
