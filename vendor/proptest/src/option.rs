//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Some` of the inner value three times out of
/// four, `None` otherwise (the real crate's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.bool_with(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
