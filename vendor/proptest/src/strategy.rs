//! Strategies: deterministic random generators for test inputs.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;

/// A generator of test values.
///
/// Unlike the real proptest there is no value tree / shrinking — a
/// strategy just produces values from the runner's RNG.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Discards generated values failing `pred` (retry with a cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B: Strategy, O, F: Fn(B::Value) -> O> Strategy for Map<B, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B: Strategy, S: Strategy, F: Fn(B::Value) -> S> Strategy for FlatMap<B, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<B, F> {
    base: B,
    whence: &'static str,
    pred: F,
}

impl<B: Strategy, F: Fn(&B::Value) -> bool> Strategy for Filter<B, F> {
    type Value = B::Value;
    fn generate(&self, rng: &mut TestRng) -> B::Value {
        for _ in 0..1000 {
            let value = self.base.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        )
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.options.len() - 1);
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy produced by [`any`].
pub struct Any<T> {
    marker: PhantomData<T>,
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_via_rng {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_rng!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}
