//! The RNG driving value generation and the runner configuration.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of cases each property runs: `PROPTEST_CASES` or 64.
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic RNG for one property test.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// RNG seeded from the test name (stable across runs) xor
    /// `PROPTEST_SEED` when set (to explore different cases).
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let extra: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(hash ^ extra),
        }
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli draw.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property in the block runs.
    pub cases: usize,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}
