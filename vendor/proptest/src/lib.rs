//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Differences from the real crate, by design (see `vendor/README.md`):
//! no shrinking (a failing case reports its values via the assert
//! message, not a minimized counterexample) and no persisted failure
//! seeds. Generation is deterministic per test function (seeded from the
//! test name), overridable with `PROPTEST_SEED`; the case count defaults
//! to 64, overridable with `PROPTEST_CASES`.

#![deny(missing_docs)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The usual imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over many generated inputs.
/// An optional `#![proptest_config(ProptestConfig::with_cases(N))]`
/// header overrides the per-block case count.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_with_cases! { ({ $config }.cases) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_with_cases! { ($crate::test_runner::case_count()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_with_cases {
    (($cases:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::test_runner::ProptestConfig;
            let cases: usize = $cases;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _ in 0..cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
    )*};
}
