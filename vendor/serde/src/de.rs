//! Deserialization half of the shim: a simplified pull model where a
//! [`Deserializer`] surrenders a self-describing [`Content`] tree and
//! types build themselves from it. Sufficient for JSON; see the crate
//! docs for the trade-off against the real visitor-based API.

use crate::content::Content;
use std::fmt::Display;
use std::marker::PhantomData;

/// Errors produced while deserializing.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A required field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }

    /// The input held an unexpected type.
    fn invalid_type(unexpected: &str, expected: &str) -> Self {
        Self::custom(format!("invalid type: {unexpected}, expected {expected}"))
    }

    /// An enum tag did not match any variant.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A format backend that can surrender its input as a [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Consumes the deserializer, yielding the self-describing content.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A [`Deserializer`] reading from an in-memory [`Content`] tree.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps `content` for deserialization.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;
    fn take_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Deserializes a value directly from a [`Content`] tree.
pub fn from_content<T: DeserializeOwned, E: Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::new(content))
}

// ---------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(D::Error::invalid_type(other.kind(), "a boolean")),
        }
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.take_content()?;
                let out_of_range =
                    || D::Error::custom(format!("integer out of range for {}", stringify!($t)));
                match content {
                    Content::U64(v) => <$t>::try_from(v).map_err(|_| out_of_range()),
                    Content::I64(v) => <$t>::try_from(v).map_err(|_| out_of_range()),
                    other => Err(D::Error::invalid_type(other.kind(), "an integer")),
                }
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_deserialize_float {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_content()? {
                    Content::F64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    other => Err(D::Error::invalid_type(other.kind(), "a number")),
                }
            }
        }
    )*};
}

impl_deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::String(s) => Ok(s),
            other => Err(D::Error::invalid_type(other.kind(), "a string")),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(D::Error::invalid_type(
                other.kind(),
                "a single-character string",
            )),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Null => Ok(()),
            other => Err(D::Error::invalid_type(other.kind(), "null")),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Null => Ok(None),
            content => from_content(content).map(Some),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Seq(items) => items.into_iter().map(from_content).collect(),
            other => Err(D::Error::invalid_type(other.kind(), "an array")),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Seq(items) if items.len() == N => {
                let collected: Result<Vec<T>, D::Error> =
                    items.into_iter().map(from_content).collect();
                collected?
                    .try_into()
                    .map_err(|_| D::Error::custom("array length changed during collection"))
            }
            Content::Seq(items) => Err(D::Error::custom(format!(
                "expected an array of length {N}, got length {}",
                items.len()
            ))),
            other => Err(D::Error::invalid_type(other.kind(), "an array")),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal; $($name:ident : $idx:tt),+))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                match deserializer.take_content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut items = items.into_iter();
                        Ok(($({
                            let _ = $idx;
                            from_content::<$name, __D::Error>(
                                items.next().expect("length checked"),
                            )?
                        },)+))
                    }
                    Content::Seq(items) => Err(__D::Error::custom(format!(
                        "expected an array of length {}, got length {}", $len, items.len()
                    ))),
                    other => Err(__D::Error::invalid_type(other.kind(), "an array")),
                }
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (1; A:0)
    (2; A:0, B:1)
    (3; A:0, B:1, C:2)
    (4; A:0, B:1, C:2, D:3)
    (5; A:0, B:1, C:2, D:3, E:4)
    (6; A:0, B:1, C:2, D:3, E:4, F:5)
}

/// Map key types: JSON object keys are strings, so non-string keys
/// round-trip through their decimal representation (as in serde_json).
pub trait MapKey: Sized {
    /// Parses a key from its JSON object-key string.
    fn from_key<E: Error>(key: String) -> Result<Self, E>;
}

impl MapKey for String {
    fn from_key<E: Error>(key: String) -> Result<Self, E> {
        Ok(key)
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),* $(,)?) => {$(
        impl MapKey for $t {
            fn from_key<E: Error>(key: String) -> Result<Self, E> {
                key.parse().map_err(|_| {
                    E::custom(format!("invalid integer object key `{key}`"))
                })
            }
        }
    )*};
}

impl_map_key_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V>
where
    K: MapKey + std::hash::Hash + Eq,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((K::from_key(k)?, from_content(v)?)))
                .collect(),
            other => Err(D::Error::invalid_type(other.kind(), "an object")),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: MapKey + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((K::from_key(k)?, from_content(v)?)))
                .collect(),
            other => Err(D::Error::invalid_type(other.kind(), "an object")),
        }
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_content()
    }
}
