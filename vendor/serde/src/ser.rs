//! Serialization half of the shim: the real `serde` trait shape, trimmed
//! to the methods JSON needs.

use crate::content::Content;
use std::fmt::Display;
use std::marker::PhantomData;

/// Errors produced while serializing.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Builder for sequences.
pub trait SerializeSeq {
    /// Value produced when the sequence ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for fixed-size tuples (serialized as sequences in JSON).
pub trait SerializeTuple {
    /// Value produced when the tuple ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for maps.
pub trait SerializeMap {
    /// Value produced when the map ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes the value for the last key.
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serializes one key/value entry.
    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for structs.
pub trait SerializeStruct {
    /// Value produced when the struct ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for struct enum variants.
pub trait SerializeStructVariant {
    /// Value produced when the variant ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A format backend: turns Rust values into `Self::Ok`.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence builder.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple builder.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Map builder.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct builder.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant builder.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64` (narrower signed ints widen to this).
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64` (narrower unsigned ints widen to this).
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value (`()` / unit structs).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;

    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(v as f64)
    }
    /// Serializes a `char` as a one-character string.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error> {
        self.serialize_str(&v.to_string())
    }

    /// Serializes a unit struct (`struct X;`).
    fn serialize_unit_struct(self, _name: &'static str) -> Result<Self::Ok, Self::Error> {
        self.serialize_unit()
    }
    /// Serializes a unit enum variant as its name.
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error> {
        self.serialize_str(variant)
    }
    /// Serializes a newtype struct as its inner value.
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error> {
        value.serialize(self)
    }
    /// Serializes a newtype enum variant as `{variant: value}`.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;

    /// Starts a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Starts a tuple of exactly `len` elements.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Starts a map of `len` entries (if known).
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Starts a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Starts a struct enum variant with `len` fields.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Serializes any `Display` value as a string.
    fn collect_str<T: ?Sized + Display>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_str(&value.to_string())
    }
}

// ---------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------

macro_rules! impl_serialize_prim {
    ($($t:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

impl_serialize_prim!(
    bool => serialize_bool,
    i8 => serialize_i8, i16 => serialize_i16, i32 => serialize_i32, i64 => serialize_i64,
    u8 => serialize_u8, u16 => serialize_u16, u32 => serialize_u32, u64 => serialize_u64,
    f32 => serialize_f32, f64 => serialize_f64,
    char => serialize_char,
);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let len = [$(stringify!($idx)),+].len();
                let mut tup = serializer.serialize_tuple(len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl Serialize for Content {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Content::Null => serializer.serialize_unit(),
            Content::Bool(b) => serializer.serialize_bool(*b),
            Content::U64(v) => serializer.serialize_u64(*v),
            Content::I64(v) => serializer.serialize_i64(*v),
            Content::F64(v) => serializer.serialize_f64(*v),
            Content::String(s) => serializer.serialize_str(s),
            Content::Seq(items) => items.serialize(serializer),
            Content::Map(entries) => {
                let mut map = serializer.serialize_map(Some(entries.len()))?;
                for (k, v) in entries {
                    map.serialize_entry(k, v)?;
                }
                map.end()
            }
        }
    }
}

// ---------------------------------------------------------------------
// ContentSerializer: Serializer producing the Content data model.
// ---------------------------------------------------------------------

/// A [`Serializer`] whose output is the [`Content`] tree, generic over
/// the caller's error type.
pub struct ContentSerializer<E> {
    marker: PhantomData<E>,
}

impl<E> ContentSerializer<E> {
    /// Creates a content serializer.
    pub fn new() -> Self {
        ContentSerializer {
            marker: PhantomData,
        }
    }
}

impl<E> Default for ContentSerializer<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Sequence builder for [`ContentSerializer`].
pub struct ContentSeq<E> {
    items: Vec<Content>,
    marker: PhantomData<E>,
}

impl<E: Error> SerializeSeq for ContentSeq<E> {
    type Ok = Content;
    type Error = E;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), E> {
        self.items.push(value.serialize(ContentSerializer::new())?);
        Ok(())
    }
    fn end(self) -> Result<Content, E> {
        Ok(Content::Seq(self.items))
    }
}

impl<E: Error> SerializeTuple for ContentSeq<E> {
    type Ok = Content;
    type Error = E;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), E> {
        SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<Content, E> {
        SerializeSeq::end(self)
    }
}

/// Map/struct builder for [`ContentSerializer`].
pub struct ContentMap<E> {
    entries: Vec<(String, Content)>,
    pending_key: Option<String>,
    /// When set, `end` wraps the map as `{variant: {..}}`.
    variant: Option<&'static str>,
    marker: PhantomData<E>,
}

impl<E: Error> SerializeMap for ContentMap<E> {
    type Ok = Content;
    type Error = E;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), E> {
        // JSON object keys are strings; integer keys stringify, as in
        // serde_json.
        match key.serialize(ContentSerializer::new())? {
            Content::String(s) => {
                self.pending_key = Some(s);
                Ok(())
            }
            Content::U64(v) => {
                self.pending_key = Some(v.to_string());
                Ok(())
            }
            Content::I64(v) => {
                self.pending_key = Some(v.to_string());
                Ok(())
            }
            other => Err(E::custom(format!(
                "map key must be a string, got {}",
                other.kind()
            ))),
        }
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), E> {
        let key = self
            .pending_key
            .take()
            .ok_or_else(|| E::custom("serialize_value called before serialize_key"))?;
        self.entries
            .push((key, value.serialize(ContentSerializer::new())?));
        Ok(())
    }
    fn end(self) -> Result<Content, E> {
        Ok(Content::Map(self.entries))
    }
}

impl<E: Error> SerializeStruct for ContentMap<E> {
    type Ok = Content;
    type Error = E;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), E> {
        self.entries
            .push((key.to_owned(), value.serialize(ContentSerializer::new())?));
        Ok(())
    }
    fn end(self) -> Result<Content, E> {
        Ok(Content::Map(self.entries))
    }
}

impl<E: Error> SerializeStructVariant for ContentMap<E> {
    type Ok = Content;
    type Error = E;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), E> {
        SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<Content, E> {
        let variant = self
            .variant
            .expect("struct variant builder carries its tag");
        Ok(Content::Map(vec![(
            variant.to_owned(),
            Content::Map(self.entries),
        )]))
    }
}

impl<E: Error> Serializer for ContentSerializer<E> {
    type Ok = Content;
    type Error = E;
    type SerializeSeq = ContentSeq<E>;
    type SerializeTuple = ContentSeq<E>;
    type SerializeMap = ContentMap<E>;
    type SerializeStruct = ContentMap<E>;
    type SerializeStructVariant = ContentMap<E>;

    fn serialize_bool(self, v: bool) -> Result<Content, E> {
        Ok(Content::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Content, E> {
        Ok(if v >= 0 {
            Content::U64(v as u64)
        } else {
            Content::I64(v)
        })
    }
    fn serialize_u64(self, v: u64) -> Result<Content, E> {
        Ok(Content::U64(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Content, E> {
        Ok(Content::F64(v))
    }
    fn serialize_str(self, v: &str) -> Result<Content, E> {
        Ok(Content::String(v.to_owned()))
    }
    fn serialize_unit(self) -> Result<Content, E> {
        Ok(Content::Null)
    }
    fn serialize_none(self) -> Result<Content, E> {
        Ok(Content::Null)
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Content, E> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Content, E> {
        Ok(Content::Map(vec![(
            variant.to_owned(),
            value.serialize(ContentSerializer::new())?,
        )]))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<ContentSeq<E>, E> {
        Ok(ContentSeq {
            items: Vec::with_capacity(len.unwrap_or(0)),
            marker: PhantomData,
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<ContentSeq<E>, E> {
        self.serialize_seq(Some(len))
    }
    fn serialize_map(self, len: Option<usize>) -> Result<ContentMap<E>, E> {
        Ok(ContentMap {
            entries: Vec::with_capacity(len.unwrap_or(0)),
            pending_key: None,
            variant: None,
            marker: PhantomData,
        })
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<ContentMap<E>, E> {
        self.serialize_map(Some(len))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<ContentMap<E>, E> {
        Ok(ContentMap {
            entries: Vec::with_capacity(len),
            pending_key: None,
            variant: Some(variant),
            marker: PhantomData,
        })
    }
}
