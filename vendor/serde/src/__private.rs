//! Support functions the derive macros expand to. Not a public API.

use crate::content::Content;
use crate::de::{from_content, DeserializeOwned, Error};

/// Unwraps a `Content::Map` for struct deserialization.
pub fn expect_map<E: Error>(content: Content, name: &str) -> Result<Vec<(String, Content)>, E> {
    match content {
        Content::Map(entries) => Ok(entries),
        other => Err(E::invalid_type(other.kind(), name)),
    }
}

/// Removes and deserializes the named struct field. Absent fields
/// deserialize from `null`, which makes `Option` fields optional (the
/// behavior the real serde derive has) while other types report the
/// missing field.
pub fn take_field<T: DeserializeOwned, E: Error>(
    entries: &mut Vec<(String, Content)>,
    field: &'static str,
) -> Result<T, E> {
    let content = match entries.iter().position(|(k, _)| k == field) {
        Some(i) => entries.remove(i).1,
        None => Content::Null,
    };
    from_content(content).map_err(|e: E| E::custom(format!("field `{field}`: {e}")))
}

/// Deserializes a value from content, used for newtype/variant payloads.
pub fn field_from_content<T: DeserializeOwned, E: Error>(
    content: Content,
    context: &'static str,
) -> Result<T, E> {
    from_content(content).map_err(|e: E| E::custom(format!("{context}: {e}")))
}
