//! Offline shim for the subset of `serde` 1.0 this workspace uses.
//!
//! The serialization half keeps the real trait shape (`Serialize` /
//! `Serializer` with `SerializeStruct`-style builders), so hand-written
//! impls like `bitstr`'s compile unchanged. The deserialization half is
//! simplified to a self-describing [`content::Content`] pull model —
//! sufficient for JSON, which is the only format this workspace speaks.
//! See `vendor/README.md` for the swap-out path to the real crate.

#![deny(missing_docs)]

pub mod content;
pub mod de;
pub mod ser;

#[doc(hidden)]
pub mod __private;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

// The derive macros live in the macro namespace, so re-exporting them
// under the trait names mirrors `serde`'s `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
