//! The self-describing data model every (de)serialization round-trips
//! through: a JSON-shaped tree. `serde_json` re-exports [`Content`] as
//! its `Value` type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON-shaped value: the common currency of this shim's serializers
/// and deserializers.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Content {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always `< 0`; non-negatives normalize to `U64`).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Seq(Vec<Content>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up `key` in a `Map`.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-oriented name of the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::String(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

const NULL: Content = Content::Null;

impl Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Content {
    fn index_mut(&mut self, key: &str) -> &mut Content {
        match self {
            Content::Map(entries) => {
                if let Some(i) = entries.iter().position(|(k, _)| k == key) {
                    &mut entries[i].1
                } else {
                    entries.push((key.to_owned(), Content::Null));
                    &mut entries.last_mut().expect("just pushed").1
                }
            }
            other => panic!("cannot index {} with a string key", other.kind()),
        }
    }
}

impl Index<usize> for Content {
    type Output = Content;
    fn index(&self, idx: usize) -> &Content {
        match self {
            Content::Seq(items) => items.get(idx).unwrap_or(&NULL),
            other => panic!("cannot index {} with a number", other.kind()),
        }
    }
}

impl IndexMut<usize> for Content {
    fn index_mut(&mut self, idx: usize) -> &mut Content {
        match self {
            Content::Seq(items) => &mut items[idx],
            other => panic!("cannot index {} with a number", other.kind()),
        }
    }
}

/// Escapes and quotes `s` as a JSON string literal.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Infinity; match serde_json's lenient Display.
        out.push_str("null");
    }
}

/// Writes `content` as compact JSON into `out`.
pub fn write_compact(out: &mut String, content: &Content) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::String(s) => write_json_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

/// Writes `content` as pretty JSON (two-space indent) into `out`.
pub fn write_pretty(out: &mut String, content: &Content, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match content {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                write_json_string(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(&mut s, self);
        f.write_str(&s)
    }
}
