//! Offline shim for the slice of `rayon` this workspace uses:
//! `collection.into_par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Unlike a stub, this really runs the mapped function on
//! `std::thread::available_parallelism()` OS threads via
//! `std::thread::scope`, preserving input order in the collected output
//! (each worker owns a contiguous chunk). Nested parallelism spawns
//! nested scopes, which is wasteful but correct; the workspace only
//! parallelizes at the replication level.

#![deny(missing_docs)]

/// Common traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = ParIter<I::Item>;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A work list awaiting a parallel consumer.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// A parallel iterator: the subset of rayon's operations used here.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Maps every element through `op`, in parallel.
    fn map<R, F>(self, op: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, op }
    }

    /// Consumes the iterator into a `Vec`, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>;

    /// Drains the iterator into a plain `Vec` (building block for
    /// `collect`).
    fn into_vec(self) -> Vec<Self::Item>;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_par_vec(self.into_vec())
    }
    fn into_vec(self) -> Vec<T> {
        self.items
    }
}

/// Lazily mapped parallel iterator.
pub struct Map<B, F> {
    base: B,
    op: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_par_vec(self.into_vec())
    }

    fn into_vec(self) -> Vec<R> {
        let items = self.base.into_vec();
        parallel_map(items, &self.op)
    }
}

/// Types constructible from the ordered results of a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds `Self` from the already-ordered result vector.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Vec<T> {
        items
    }
}

/// The worker-thread count the next parallel operation will use — the
/// public face of [`max_threads`], mirroring
/// `rayon::current_num_threads`. Re-reads `AHN_THREADS` on every call,
/// so an in-process override (the bench harness's thread sweep) takes
/// effect immediately. Callers that want to surface the silent
/// `AHN_THREADS` cap (sweep/bench/serve startup logs, `/metrics`)
/// read this.
pub fn current_num_threads() -> usize {
    max_threads()
}

/// The host's available parallelism, uncapped — what
/// [`current_num_threads`] would report with `AHN_THREADS` unset.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Upper bound on worker threads: `available_parallelism`, capped by
/// the `AHN_THREADS` environment variable when it is set to a positive
/// integer. The cap exists so processes that already fan out at a
/// higher level (the `ahn_serve` worker pool runs one experiment per
/// worker, each of which parallelizes its replications through this
/// shim) can divide the machine instead of oversubscribing it
/// `workers ×` (see vendor/README.md).
fn max_threads() -> usize {
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    apply_cap(available, std::env::var("AHN_THREADS").ok().as_deref())
}

/// The pure cap rule behind [`max_threads`], factored out so tests can
/// exercise it without `set_var` (which is a genuine data race against
/// concurrent `getenv` callers on other test threads).
fn apply_cap(available: usize, var: Option<&str>) -> usize {
    match var.map(|v| v.trim().parse::<usize>()) {
        Some(Ok(cap)) if cap > 0 => available.min(cap),
        _ => available,
    }
}

/// Runs `op` over `items` on a scoped thread pool, returning results in
/// input order.
fn parallel_map<T, R, F>(items: Vec<T>, op: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(op).collect();
    }

    // Hand each worker a contiguous chunk; chunk order restores input
    // order on reassembly.
    let chunk_size = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    {
        let mut items = items.into_iter();
        loop {
            let chunk: Vec<T> = items.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
    }

    let mut results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(op).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("parallel worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, (i * i) as u64);
        }
    }

    #[test]
    fn ahn_threads_cap_rule() {
        // The pure rule, tested without touching the process
        // environment (set_var would race concurrent getenv callers).
        assert_eq!(crate::apply_cap(8, None), 8, "unset means no cap");
        assert_eq!(crate::apply_cap(8, Some("2")), 2);
        assert_eq!(crate::apply_cap(8, Some(" 3 ")), 3, "whitespace tolerated");
        assert_eq!(crate::apply_cap(2, Some("16")), 2, "never above available");
        assert_eq!(crate::apply_cap(8, Some("0")), 8, "zero means no cap");
        assert_eq!(crate::apply_cap(8, Some("many")), 8, "garbage means no cap");
        // And max_threads (which reads the real env) stays within the
        // machine regardless of what AHN_THREADS holds.
        let available = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert!((1..=available).contains(&crate::max_threads()));
    }

    #[test]
    fn public_accessors_agree_with_internal_rule() {
        assert_eq!(crate::current_num_threads(), crate::max_threads());
        assert!(crate::available_cores() >= crate::current_num_threads());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
