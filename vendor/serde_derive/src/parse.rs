//! A minimal parser from `proc_macro::TokenStream` to the handful of
//! item shapes the derive macros support.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input.
pub struct Input {
    /// Type name.
    pub name: String,
    /// Shape of the type.
    pub data: Data,
    /// Whether `#[serde(transparent)]` was present.
    pub transparent: bool,
}

/// Shape of the derived type.
pub enum Data {
    /// `struct X { a: T, .. }`
    Struct { fields: Vec<String> },
    /// `struct X(T, ..);`
    Tuple { arity: usize },
    /// `struct X;`
    Unit,
    /// `enum X { .. }`
    Enum { variants: Vec<Variant> },
}

/// One enum variant.
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Variant shape.
    pub kind: VariantKind,
}

/// Shape of an enum variant.
pub enum VariantKind {
    /// `V`
    Unit,
    /// `V(T)`
    Newtype,
    /// `V { a: T, .. }`
    Struct(Vec<String>),
}

impl Input {
    /// Parses a derive input item.
    ///
    /// # Panics
    /// Panics (aborting compilation with the message) on unsupported
    /// shapes: generics, unions, multi-field tuple variants.
    pub fn parse(stream: TokenStream) -> Input {
        let mut iter = stream.into_iter().peekable();
        let mut transparent = false;

        // Outer attributes, visibility, then `struct` / `enum`.
        let keyword = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if crate::is_serde_transparent(g.stream()) {
                            transparent = true;
                        }
                    }
                    other => panic!("expected attribute body, found {other:?}"),
                },
                Some(TokenTree::Ident(id)) => {
                    let word = id.to_string();
                    match word.as_str() {
                        "pub" | "crate" => {}
                        "struct" | "enum" => break word,
                        "union" => panic!("vendored serde_derive: unions are not supported"),
                        other => panic!("unexpected token `{other}` before struct/enum"),
                    }
                }
                // `pub(crate)` / `pub(in ..)` visibility payload.
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {}
                other => panic!("unexpected token {other:?} before struct/enum"),
            }
        };

        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected type name, found {other:?}"),
        };

        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '<' {
                panic!(
                    "vendored serde_derive: generic type `{name}` is not supported; \
                     write the impls by hand or extend vendor/serde_derive"
                );
            }
        }

        let data = if keyword == "enum" {
            match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Data::Enum {
                    variants: parse_variants(g.stream()),
                },
                other => panic!("expected enum body, found {other:?}"),
            }
        } else {
            match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Data::Struct {
                    fields: parse_named_fields(g.stream()),
                },
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Data::Tuple {
                        arity: count_tuple_fields(g.stream()),
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Unit,
                other => panic!("expected struct body, found {other:?}"),
            }
        };

        Input {
            name,
            data,
            transparent,
        }
    }
}

/// Skips `#[..]` attribute pairs, returning the first non-attribute token.
fn next_skipping_attributes(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Option<TokenTree> {
    loop {
        match iter.next()? {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let body = iter.next();
                debug_assert!(matches!(
                    &body,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket
                ));
            }
            other => return Some(other),
        }
    }
}

/// Parses `a: T, pub b: U, ..` into field names, skipping types (with
/// `<`/`>` depth tracking so `HashMap<K, V>` commas don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        // Field name, skipping attributes and visibility.
        let name = loop {
            match next_skipping_attributes(&mut iter) {
                None => return fields,
                Some(TokenTree::Ident(id)) => {
                    let word = id.to_string();
                    if word == "pub" || word == "crate" {
                        continue;
                    }
                    break word;
                }
                // `pub(crate)` payload.
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {}
                Some(other) => panic!("expected field name, found {other}"),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        skip_type_until_comma(&mut iter);
    }
}

/// Consumes tokens of a type up to (and including) the next top-level `,`.
fn skip_type_until_comma(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0usize;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the top-level comma-separated fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0usize;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tt in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => fields += 1,
                _ => {}
            }
        }
    }
    if saw_tokens {
        fields + 1
    } else {
        0
    }
}

/// Parses enum variants: `A, B(T), C { a: T }`.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let name = match next_skipping_attributes(&mut iter) {
            None => return variants,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
            Some(other) => panic!("expected variant name, found {other}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.clone().stream());
                iter.next();
                if arity != 1 {
                    panic!(
                        "vendored serde_derive: variant `{name}` has {arity} tuple fields; \
                         only newtype variants are supported"
                    );
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.clone().stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to the variant separator (tolerates discriminants).
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                    iter.next();
                    break;
                }
                _ => {
                    iter.next();
                }
            }
        }
    }
}
