//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim. Implemented directly on `proc_macro` token
//! streams (`syn`/`quote` are not available offline).
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields
//! - tuple structs (serialized as newtype / tuple)
//! - enums with unit, newtype and struct variants (externally tagged)
//! - the `#[serde(transparent)]` container attribute
//!
//! Unsupported shapes (generics, other serde attributes) abort with a
//! clear compile error rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{Data, Input, VariantKind};

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = Input::parse(input);
    let body = serialize_body(&input);
    let name = &input.name;
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derived Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = Input::parse(input);
    let body = deserialize_body(&input);
    let name = &input.name;
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derived Deserialize impl parses")
}

fn serialize_body(input: &Input) -> String {
    let name = &input.name;
    match &input.data {
        Data::Struct { fields } if input.transparent => {
            let field = single_field(name, fields.len() == 1, || fields[0].clone());
            format!("::serde::Serialize::serialize(&self.{field}, __serializer)")
        }
        Data::Struct { fields } => {
            let n = fields.len();
            let mut out = format!(
                "let mut __s = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {n}usize)?;\n"
            );
            for f in fields {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __s, \"{f}\", &self.{f})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__s)");
            out
        }
        Data::Tuple { arity } if input.transparent || *arity == 1 => {
            single_field(name, *arity == 1, String::new);
            if input.transparent {
                "::serde::Serialize::serialize(&self.0, __serializer)".to_owned()
            } else {
                format!(
                    "::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
                )
            }
        }
        Data::Tuple { arity } => {
            let mut out = format!(
                "let mut __t = ::serde::Serializer::serialize_tuple(__serializer, {arity}usize)?;\n"
            );
            for i in 0..*arity {
                out.push_str(&format!(
                    "::serde::ser::SerializeTuple::serialize_element(&mut __t, &self.{i})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeTuple::end(__t)");
            out
        }
        Data::Unit => {
            format!("::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Data::Enum { variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings = fields.join(", ");
                        let n = fields.len();
                        let mut arm = format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n\
                             let mut __sv = ::serde::Serializer::serialize_struct_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", {n}usize)?;\n"
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __sv, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(__sv)\n},\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    }
}

fn deserialize_body(input: &Input) -> String {
    let name = &input.name;
    match &input.data {
        Data::Struct { fields } if input.transparent => {
            let field = single_field(name, fields.len() == 1, || fields[0].clone());
            format!(
                "::core::result::Result::Ok({name} {{ {field}: \
                 ::serde::de::from_content::<_, __D::Error>(\
                 ::serde::Deserializer::take_content(__deserializer)?)? }})"
            )
        }
        Data::Struct { fields } => {
            let mut out = format!(
                "let __content = ::serde::Deserializer::take_content(__deserializer)?;\n\
                 let mut __map = ::serde::__private::expect_map::<__D::Error>(__content, \"struct {name}\")?;\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                out.push_str(&format!(
                    "{f}: ::serde::__private::take_field::<_, __D::Error>(&mut __map, \"{f}\")?,\n"
                ));
            }
            out.push_str("})");
            out
        }
        Data::Tuple { arity } => {
            single_field(name, *arity == 1, String::new);
            format!(
                "::core::result::Result::Ok({name}(\
                 ::serde::de::from_content::<_, __D::Error>(\
                 ::serde::Deserializer::take_content(__deserializer)?)?))"
            )
        }
        Data::Unit => format!(
            "::serde::Deserializer::take_content(__deserializer)\
             .map(|_| {name})"
        ),
        Data::Enum { variants } => {
            let expected: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let expected = expected.join(", ");
            let units: Vec<_> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let datas: Vec<_> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();

            let mut out = "let __content = ::serde::Deserializer::take_content(__deserializer)?;\n\
                 match __content {\n"
                .to_owned();
            if !units.is_empty() {
                out.push_str("::serde::content::Content::String(__s) => match __s.as_str() {\n");
                for v in &units {
                    let vname = &v.name;
                    out.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
                out.push_str(&format!(
                    "__other => ::core::result::Result::Err(\
                     ::serde::de::Error::unknown_variant(__other, &[{expected}])),\n}},\n"
                ));
            }
            if !datas.is_empty() {
                out.push_str(
                    "::serde::content::Content::Map(mut __m) if __m.len() == 1 => {\n\
                     let (__tag, __inner) = __m.remove(0);\n\
                     match __tag.as_str() {\n",
                );
                for v in &datas {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Newtype => out.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                             ::serde::__private::field_from_content::<_, __D::Error>(\
                             __inner, \"variant {vname}\")?)),\n"
                        )),
                        VariantKind::Struct(fields) => {
                            let mut arm = format!(
                                "\"{vname}\" => {{\n\
                                 let mut __map = ::serde::__private::expect_map::<__D::Error>(\
                                 __inner, \"variant {vname}\")?;\n\
                                 ::core::result::Result::Ok({name}::{vname} {{\n"
                            );
                            for f in fields {
                                arm.push_str(&format!(
                                    "{f}: ::serde::__private::take_field::<_, __D::Error>(&mut __map, \"{f}\")?,\n"
                                ));
                            }
                            arm.push_str("})\n},\n");
                            out.push_str(&arm);
                        }
                        VariantKind::Unit => unreachable!("filtered to data variants"),
                    }
                }
                out.push_str(&format!(
                    "__other => ::core::result::Result::Err(\
                     ::serde::de::Error::unknown_variant(__other, &[{expected}])),\n}}\n}},\n"
                ));
            }
            out.push_str(&format!(
                "__other => ::core::result::Result::Err(::serde::de::Error::invalid_type(\
                 __other.kind(), \"enum {name}\")),\n}}"
            ));
            out
        }
    }
}

/// Validates the single-field expectation of transparent/newtype codegen.
fn single_field(name: &str, is_single: bool, field: impl FnOnce() -> String) -> String {
    if !is_single {
        panic!(
            "vendored serde_derive: `{name}` must have exactly one field \
             for transparent/newtype (de)serialization"
        );
    }
    field()
}

/// Returns true when the attribute group body is `serde(transparent)`.
fn is_serde_transparent(group_body: TokenStream) -> bool {
    let mut iter = group_body.into_iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(path)), Some(TokenTree::Group(args)))
            if path.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let mut saw_transparent = false;
            for tt in args.stream() {
                match tt {
                    TokenTree::Ident(i) if i.to_string() == "transparent" => saw_transparent = true,
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => panic!(
                        "vendored serde_derive: unsupported serde attribute `{other}` \
                         (only #[serde(transparent)] is implemented)"
                    ),
                }
            }
            saw_transparent
        }
        (Some(TokenTree::Ident(path)), _) if path.to_string() == "serde" => {
            panic!("vendored serde_derive: unsupported bare #[serde] attribute")
        }
        _ => false,
    }
}
