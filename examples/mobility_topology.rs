//! Topology extension: check the paper's "random relays ≈ high mobility"
//! abstraction against an explicit random-waypoint network.
//!
//! ```text
//! cargo run --release --example mobility_topology
//! ```
//!
//! The paper never simulates positions: "All intermediate nodes are
//! chosen randomly. This simulates a network with a high mobility level"
//! (§4.1). Here we build the thing being abstracted — nodes moving over
//! a 1 km² arena — and measure how quickly routes churn, which is the
//! property the abstraction relies on.

use ahn::net::topology::{MobileNetwork, WaypointParams};
use ahn::net::NodeId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2007);
    let params = WaypointParams {
        side: 1000.0,
        speed_min: 5.0,
        speed_max: 20.0,
        pause: 2.0,
    };
    let mut net = MobileNetwork::new(&mut rng, 50, params, 250.0);

    let src = NodeId(0);
    let dst = NodeId(49);
    println!("50 nodes, 1 km^2, 250 m radio range, random-waypoint mobility\n");

    println!("time  route(src 0 -> dst 49)                    alt-routes");
    let mut previous: Option<Vec<NodeId>> = None;
    let mut changes = 0;
    let mut observations = 0;
    for minute in 0..12 {
        let route = net.shortest_route(src, dst, 10);
        let alts = net.disjoint_routes(src, dst, 10, 3).len();
        let rendered = match &route {
            Some(r) if r.is_empty() => "direct neighbor".to_string(),
            Some(r) => r
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(" -> "),
            None => "unreachable".to_string(),
        };
        println!("{:>3}m  {:<42} {alts}", minute, rendered);
        if let (Some(prev), Some(cur)) = (&previous, &route) {
            observations += 1;
            if prev != cur {
                changes += 1;
            }
        }
        previous = route;
        // Advance one minute of mobility.
        for _ in 0..60 {
            net.step(&mut rng, 1.0);
        }
    }

    if observations > 0 {
        println!("\nRoute churn: {changes}/{observations} minutes changed the relay chain.");
    }
    println!(
        "\nAt vehicular speeds the relay chain rarely survives a minute —\n\
         the regime in which the paper's uniformly-random relay model is\n\
         the right abstraction. The `ahn-net` topology module lets you\n\
         re-derive relay pools from positions if you want to drop it."
    );
}
