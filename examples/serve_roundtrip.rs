//! Simulation-as-a-service round trip: boot the HTTP job server
//! in-process, submit an experiment, poll it to completion, then watch
//! an identical submission come straight back from the result cache.
//!
//! ```text
//! cargo run --release --example serve_roundtrip
//! ```
//!
//! The same flow works against a standalone server — start one with
//! `cargo run --release -p ahn_cli -- serve` and point any HTTP client
//! at it (see README "Serving experiments over HTTP").

use ahn::serve::loadtest::one_shot;
use ahn::serve::{server, JobSpec};
use serde_json::Value;
use std::time::Duration;

fn main() {
    // 1. Boot a server on an ephemeral loopback port.
    let handle = server::spawn(server::ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_cap: 32,
        queue_cap: 32,
        journal: None,
        ..server::ServerConfig::default()
    })
    .expect("bind a loopback port");
    let addr = handle.addr().to_string();
    println!("server listening on {addr}");

    // 2. Submit the fig4 preset (a CSN-free and a CSN-heavy evolution
    //    at bench scale). `GET /v1/presets` lists the expanded bodies.
    let body = serde_json::to_string(&JobSpec::Preset {
        name: "fig4".into(),
    })
    .expect("serialize spec");
    let (status, response) = one_shot(&addr, "POST", "/v1/experiments", &body).expect("submit");
    let ack: Value = serde_json::from_str(&response).expect("parse ack");
    println!("submitted fig4 preset: HTTP {status}, ack {response}");
    let Value::U64(job_id) = ack["job_id"] else {
        panic!("expected a queued job, got {response}");
    };

    // 3. Poll the job until a worker finishes it.
    let result = loop {
        let (status, response) =
            one_shot(&addr, "GET", &format!("/v1/jobs/{job_id}"), "").expect("poll");
        assert_eq!(status, 200, "{response}");
        let job: Value = serde_json::from_str(&response).expect("parse job");
        match &job["status"] {
            Value::String(s) if s == "done" => break job["result"].clone(),
            Value::String(s) if s == "failed" => panic!("job failed: {response}"),
            other => {
                println!("  job {job_id}: {other:?}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    if let Value::Seq(cases) = &result {
        for case in cases {
            println!(
                "  result {:?}: final mean cooperation {:?}",
                case["case_name"], case["final_coop"]["mean"]
            );
        }
    }

    // 4. Resubmit the identical spec: the canonical config hash finds
    //    the cached result and no job runs.
    let (status, response) = one_shot(&addr, "POST", "/v1/experiments", &body).expect("resubmit");
    let hit: Value = serde_json::from_str(&response).expect("parse hit");
    assert_eq!(hit["cached"], Value::Bool(true), "{response}");
    println!("resubmission answered inline from the cache (HTTP {status})");

    // 5. The /metrics endpoint confirms the hit.
    let (_, metrics) = one_shot(&addr, "GET", "/metrics", "").expect("metrics");
    let m: Value = serde_json::from_str(&metrics).expect("parse metrics");
    println!(
        "metrics: submissions {:?}, cache hits {:?}, jobs completed {:?}",
        m["submissions"], m["cache_hits"], m["jobs_completed"]
    );

    handle.shutdown();
    println!("server shut down cleanly");
}
