//! Energy accounting: the economics that motivate the whole paper
//! (§1 and ref [4], Feeney & Nilsson).
//!
//! ```text
//! cargo run --release --example energy_accounting
//! ```
//!
//! Sleeping costs ~2 % of idle listening, and discarding a packet saves
//! a transmission — that is why selfishness pays, and why the activity
//! dimension exists (sleepers are invisible to the reputation system).
//! This example prices the behaviors and then measures real per-kind
//! energy from a short evolution run.

use ahn::core::{cases::CaseSpec, config::ExperimentConfig, experiment::run_replication};
use ahn::net::energy::{EnergyLedger, PowerProfile, RadioState};
use ahn::net::PathMode;

fn main() {
    let profile = PowerProfile::wavelan();
    println!("WaveLAN-class power profile (mW):");
    for (label, state) in [
        ("sleep", RadioState::Sleep),
        ("idle", RadioState::Idle),
        ("receive", RadioState::Receive),
        ("transmit", RadioState::Transmit),
    ] {
        println!("  {label:<9} {:>8.1}", profile.power_mw(state));
    }
    println!(
        "  sleep/idle ratio: {:.1}% (the paper's \"about 98% lower\")\n",
        profile.sleep_fraction() * 100.0
    );

    // Price one hour of the three behaviors the paper contrasts.
    let hour = 3600.0;
    let mut listener = EnergyLedger::new();
    listener.add_idle(hour);
    let mut sleeper = EnergyLedger::new();
    sleeper.add_sleep(hour);
    let mut forwarder = EnergyLedger::new();
    forwarder.add_idle(hour);
    for _ in 0..1000 {
        forwarder.add_forward();
    }
    println!("One hour of behavior (joules):");
    println!(
        "  sleeping:                    {:>8.0}",
        sleeper.total_mj(&profile) / 1000.0
    );
    println!(
        "  idle listening:              {:>8.0}",
        listener.total_mj(&profile) / 1000.0
    );
    println!(
        "  listening + 1000 forwards:   {:>8.0}",
        forwarder.total_mj(&profile) / 1000.0
    );

    // Measure actual event energy from a short evolution run.
    let mut config = ExperimentConfig::smoke();
    config.population = 6;
    config.rounds = 60;
    config.generations = 15;
    let case = CaseSpec::mini("energy", &[4], 10, PathMode::Shorter);
    let rep = run_replication(&config, &case, 11);
    println!("\nMeasured per-node packet energy in the final generation (mJ):");
    println!(
        "  normal (forwarding) nodes:   {:>8.1}",
        rep.energy_normal_mj
    );
    println!(
        "  constantly selfish nodes:    {:>8.1}",
        rep.energy_selfish_mj
    );
    println!(
        "  selfishness saves {:.0}% of packet energy — the temptation the\n\
         cooperation-enforcement system has to beat.",
        (1.0 - rep.energy_selfish_mj / rep.energy_normal_mj) * 100.0
    );
}
