//! Quickstart: evolve forwarding strategies in a CSN-free network and
//! watch cooperation emerge.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's case 1 in miniature: no constantly selfish nodes,
//! shorter-path mode. Starting from random 13-bit strategies (~25 %
//! delivery), the GA discovers trust-conditional forwarding and the
//! cooperation level climbs toward 100 %.

use ahn::core::{cases::CaseSpec, config::ExperimentConfig, experiment::run_experiment};
use ahn::net::PathMode;

fn main() {
    // A small but dynamics-preserving configuration (see EXPERIMENTS.md
    // for why the 30-round reputation horizon matters).
    let mut config = ExperimentConfig::smoke();
    config.population = 20;
    config.rounds = 30;
    config.generations = 40;
    config.replications = 4;

    let case = CaseSpec::mini("quickstart (case 1)", &[0], 10, PathMode::Shorter);

    println!(
        "Evolving {} strategies over {} generations ({} replications)...\n",
        config.population, config.generations, config.replications
    );
    let result = run_experiment(&config, &case);

    println!("generation  cooperation  (bar)");
    for (generation, mean) in result.coop_series.thin(20) {
        let bar = "#".repeat((mean * 40.0).round() as usize);
        println!("{generation:>10}  {:>10.1}%  {bar}", mean * 100.0);
    }

    let final_coop = result.final_coop.mean().unwrap_or(0.0);
    println!("\nFinal cooperation level: {:.1}%", final_coop * 100.0);
    println!("(paper, full scale, case 1: ~97%)");

    println!("\nMost popular evolved strategies:");
    for (strategy, share) in result.census.top_strategies(3) {
        println!("  {strategy}   ({:.0}%)", share * 100.0);
    }
    println!(
        "\nStrategies forwarding for unknown nodes: {:.0}% (paper: ~100%)",
        result.census.unknown_forward_share() * 100.0
    );
}
