//! The IPDRP baseline (paper ref [12], our experiment X3): why plain
//! random-pairing Prisoner's Dilemma *cannot* sustain cooperation — and
//! why the ad hoc model needs reputation.
//!
//! ```text
//! cargo run --release --example ipdrp_baseline
//! ```
//!
//! In the IPDRP every round pairs you with a random stranger and your
//! single-round memory almost never refers to them, so defectors cannot
//! be targeted. Cooperation collapses. The paper's contribution is
//! precisely the missing ingredient: a reputation system that makes
//! behavior *addressable*, letting conditional strategies punish the
//! right nodes.

use ahn::ipdrp::{run_ipdrp, IpdrpConfig, IpdrpStrategy, Move, PdPayoffs};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let config = IpdrpConfig {
        population: 60,
        rounds: 60,
        generations: 60,
        payoffs: PdPayoffs::default(),
        ..IpdrpConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    println!(
        "IPDRP: population {}, {} pairing rounds, {} generations, roulette selection\n",
        config.population, config.rounds, config.generations
    );
    let history = run_ipdrp(&mut rng, &config);

    println!("generation  cooperation  mean-fitness");
    for g in history.iter().step_by(6) {
        println!(
            "{:>10}  {:>10.1}%  {:>12.2}",
            g.generation,
            g.cooperation * 100.0,
            g.stats.mean
        );
    }
    let last = history.last().expect("at least one generation");
    println!(
        "\nFinal: {:.1}% cooperation, mean fitness {:.2} (P = 1.0 is all-defect)",
        last.cooperation * 100.0,
        last.stats.mean
    );

    // Show why: even Tit-for-Tat is helpless against strangers.
    let tft = IpdrpStrategy::tit_for_tat();
    println!("\nTit-for-Tat's problem under random pairing:");
    println!(
        "  round 1 vs defector D1: TFT plays {:?} (first move)",
        tft.first_move()
    );
    println!(
        "  round 2 vs *fresh* defector D2: TFT plays {:?} — it punishes D2 for D1's sin",
        tft.next_move(Move::Cooperate, Move::Defect)
    );
    println!(
        "\nReciprocity needs identity. The ad hoc model restores it through\n\
         watchdog reputation — run `cargo run --release --example quickstart`\n\
         to see cooperation evolve once behavior is addressable."
    );
}
