//! Selfish invasion: what happens when 60 % of the network never
//! forwards (the paper's case 2).
//!
//! ```text
//! cargo run --release --example selfish_invasion
//! ```
//!
//! Constantly selfish nodes (CSN) drop every packet. The reputation
//! system identifies them, evolved strategies starve them of service,
//! but with 60 % of every tournament selfish, most routes contain a CSN
//! and overall cooperation stays low — the paper reports ~19 % at full
//! scale. The interesting part is *who* suffers: watch the
//! request-response matrix.

use ahn::core::{cases::CaseSpec, config::ExperimentConfig, experiment::run_experiment};
use ahn::net::PathMode;

fn main() {
    let mut config = ExperimentConfig::smoke();
    config.population = 20;
    config.rounds = 60;
    config.generations = 40;
    config.replications = 4;

    // 6 of 10 participants per tournament are CSN - the 60% of case 2.
    let case = CaseSpec::mini("selfish invasion (case 2)", &[6], 10, PathMode::Shorter);

    println!("Evolving against a 60% selfish majority...\n");
    let result = run_experiment(&config, &case);

    let coop = result.final_coop.mean().unwrap_or(0.0);
    println!(
        "Final cooperation level: {:.1}%  (paper, full scale: ~19%)",
        coop * 100.0
    );
    println!(
        "Chosen paths free of CSN: {:.1}%",
        result.per_env_csn_free[0].mean().unwrap_or(0.0) * 100.0
    );

    println!("\nHow forwarding requests were treated (final generation):");
    let nn = &result.req_from_nn;
    println!("  from normal nodes:");
    println!(
        "    accepted            {:>6.1}%",
        nn.accepted.mean().unwrap_or(0.0) * 100.0
    );
    println!(
        "    rejected by normals {:>6.1}%",
        nn.rejected_by_nn.mean().unwrap_or(0.0) * 100.0
    );
    println!(
        "    rejected by CSN     {:>6.1}%",
        nn.rejected_by_csn.mean().unwrap_or(0.0) * 100.0
    );
    let csn = &result.req_from_csn;
    println!("  from CSN:");
    println!(
        "    accepted            {:>6.1}%",
        csn.accepted.mean().unwrap_or(0.0) * 100.0
    );
    println!(
        "    rejected by normals {:>6.1}%",
        csn.rejected_by_nn.mean().unwrap_or(0.0) * 100.0
    );
    println!(
        "    rejected by CSN     {:>6.1}%",
        csn.rejected_by_csn.mean().unwrap_or(0.0) * 100.0
    );
    println!(
        "\nThe asymmetry is the enforcement mechanism working: normal nodes'\n\
         packets are dropped mostly by CSN, while CSN packets are refused\n\
         by normal nodes once their reputation collapses."
    );
}
