//! Strategy analysis: inspect what the GA actually evolved (the paper's
//! §6.3, Tables 7–9).
//!
//! ```text
//! cargo run --release --example strategy_analysis
//! ```

use ahn::core::{cases::CaseSpec, config::ExperimentConfig, experiment::run_experiment};
use ahn::net::{PathMode, TrustLevel};
use ahn::strategy::analysis::sub_strategy_str;

fn main() {
    let mut config = ExperimentConfig::smoke();
    config.population = 24;
    config.rounds = 60;
    config.generations = 50;
    config.replications = 6;

    // A mixed world: clean, mildly hostile and hostile environments.
    let case = CaseSpec::mini("analysis", &[0, 3, 6], 12, PathMode::Shorter);
    println!("Evolving across three environments (0, 3 and 6 CSN of 12)...\n");
    let result = run_experiment(&config, &case);

    println!("Most popular full strategies (Table 7 format):");
    for (strategy, share) in result.census.top_strategies(5) {
        println!("  {strategy}   {:>5.1}%", share * 100.0);
    }

    println!("\nSub-strategies per trust level, >3% share (Tables 8-9 format):");
    for t in TrustLevel::ALL {
        let rows = result.census.sub_strategies(t, 0.03);
        let rendered: Vec<String> = rows
            .iter()
            .map(|(code, share)| format!("{} ({:.0}%)", sub_strategy_str(*code), share * 100.0))
            .collect();
        println!("  Trust {}: {}", t.value(), rendered.join(", "));
    }

    println!(
        "\nUnknown-node bit says FORWARD in {:.0}% of strategies",
        result.census.unknown_forward_share() * 100.0
    );
    println!(
        "Strategies forwarding in >=2 activity levels at trust 2: {:.0}%",
        result.census.forward_at_least(TrustLevel::T2, 2) * 100.0
    );

    // Decode the winner in human terms.
    if let Some((winner, share)) = result.census.top_strategies(1).into_iter().next() {
        println!(
            "\nThe most popular strategy ({:.0}% of final populations):",
            share * 100.0
        );
        println!("{}", winner.describe());
        println!(
            "\nReading: trusted sources are served unconditionally, untrusted\n\
             ones are punished, and newcomers (unknown) are given a chance —\n\
             exactly the discriminator the paper describes."
        );
    }
}
