//! Path-mode sensitivity: shorter vs longer paths (the paper's cases 3
//! vs 4).
//!
//! ```text
//! cargo run --release --example path_modes
//! ```
//!
//! Longer routes are more likely to contain a selfish node, so the same
//! CSN density hurts much more under the longer-path mode — that is the
//! whole difference between the paper's cases 3 and 4, and it also makes
//! evolved strategies less forgiving toward low-trust sources (Tables
//! 8–9).

use ahn::core::{cases::CaseSpec, config::ExperimentConfig, experiment::run_experiment};
use ahn::net::{PathMode, TrustLevel};

fn main() {
    let mut config = ExperimentConfig::smoke();
    config.population = 24;
    config.rounds = 60;
    config.generations = 30;
    config.replications = 4;

    for mode in [PathMode::Shorter, PathMode::Longer] {
        // Two environments: CSN-free and one-third selfish.
        let case = CaseSpec::mini(&format!("{mode} mode"), &[0, 4], 12, mode);
        let result = run_experiment(&config, &case);
        println!(
            "== {} paths ==",
            if mode == PathMode::Shorter {
                "shorter"
            } else {
                "longer"
            }
        );
        println!(
            "  overall cooperation: {:.1}%",
            result.final_coop.mean().unwrap_or(0.0) * 100.0
        );
        for (e, label) in ["CSN-free env", "33% CSN env"].iter().enumerate() {
            println!(
                "  {label}: cooperation {:.1}%, CSN-free paths {:.1}%",
                result.per_env_coop[e].mean().unwrap_or(0.0) * 100.0,
                result.per_env_csn_free[e].mean().unwrap_or(0.0) * 100.0,
            );
        }
        print!("  evolved tolerance (share of forwarding cells per trust level):");
        for t in TrustLevel::ALL {
            let mut weighted = 0.0;
            let rows = result.census.sub_strategies(t, 0.0);
            for (code, share) in rows {
                weighted += share * f64::from(code.count_ones()) / 3.0;
            }
            print!("  TL{}={:.0}%", t.value(), weighted * 100.0);
        }
        println!("\n");
    }
    println!(
        "Expected shape (paper Tables 5, 8-9): the longer-path runs deliver\n\
         less, avoid CSN less often, and evolve harsher low-trust rules."
    );
}
