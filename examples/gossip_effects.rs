//! Second-hand reputation: what the CORE/CONFIDANT-style gossip the
//! paper's related work discusses would do to this model (ablation A7).
//!
//! ```text
//! cargo run --release --example gossip_effects
//! ```
//!
//! The surprise (see EXPERIMENTS.md, A7): gossip *lowers* cooperation
//! here. The evolved convention relies on a generous default toward
//! unknown nodes (strategy bit 12 → Forward); hearsay makes strangers
//! "known" at middling trust before any first-hand evidence exists,
//! bypassing that default and triggering low-trust punishment of
//! innocents. CORE's positive-only filter — designed against slander —
//! loses less than CONFIDANT-style full sharing.

use ahn::core::{cases::CaseSpec, config::ExperimentConfig, experiment::run_experiment};
use ahn::net::{GossipConfig, PathMode};

fn main() {
    let mut config = ExperimentConfig::smoke();
    config.population = 20;
    config.rounds = 60;
    config.generations = 35;
    config.replications = 4;
    let case = CaseSpec::mini("gossip", &[0, 4], 10, PathMode::Shorter);

    let variants: [(&str, Option<GossipConfig>); 3] = [
        ("first-hand only (paper)", None),
        (
            "positive gossip (CORE-style)",
            Some(GossipConfig::core_style()),
        ),
        (
            "full gossip (CONFIDANT-style)",
            Some(GossipConfig::confidant_style()),
        ),
    ];

    println!("Evolving under three reputation-sharing policies...\n");
    for (label, gossip) in variants {
        let mut cfg = config.clone();
        cfg.gossip = gossip;
        let result = run_experiment(&cfg, &case);
        println!(
            "{label:<32} cooperation {:>5.1}%   CSN acceptance {:>4.1}%   unknown-bit=F {:>3.0}%",
            result.final_coop.mean().unwrap_or(0.0) * 100.0,
            result.req_from_csn.accepted.mean().unwrap_or(0.0) * 100.0,
            result.census.unknown_forward_share() * 100.0,
        );
    }

    println!(
        "\nSharing reputation speeds up *knowing* — but in this model the\n\
         unknown-node default is already maximally generous, so hearsay\n\
         mostly converts friendly strangers into distrusted acquaintances.\n\
         Selfish nodes were already starved by first-hand watchdogs."
    );
}
